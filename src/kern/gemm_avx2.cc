// AVX2/FMA GEMM microkernels. This is the only TU compiled with
// -mavx2 -mfma; nothing here may run unless kern dispatch verified CPUID
// support. All loops use a fixed summation order, so results are
// deterministic for a pinned kernel — just not bitwise equal to scalar.
//
// Layout of the main kernels: 16-column panels of B (optionally packed
// contiguously when the row count amortises the copy), register tiles of
// up to 4 A-rows x 16 columns accumulated over the full K extent in ymm
// registers, then added into C once per tile. The A element stride is
// parameterised so the same microkernel serves both A and A^T operands.

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#include "kern/arena.h"
#include "kern/kern_internal.h"

namespace tpr::kern::avx2 {

namespace {

constexpr int kPanel = 16;  // B panel width in floats (two ymm)

// Packing pays once a panel is reused across several row tiles.
constexpr int kPackMinRows = 8;

inline float Hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

// Copies the k x 16 column panel of b (k x n, row-major) at column j0
// into contiguous pb.
inline void PackB16(const float* b, int k, int n, int j0, float* pb) {
  for (int kk = 0; kk < k; ++kk) {
    std::memcpy(pb + static_cast<size_t>(kk) * kPanel,
                b + static_cast<size_t>(kk) * n + j0,
                kPanel * sizeof(float));
  }
}

// ROWS x 16 register tiles: out[r, 0..16) += sum_kk A(r, kk) * B(kk, 0..16).
// A element (r, kk) sits at abase[r * a_row_stride + kk * a_k_stride] so
// the kernel serves both normal (stride k, 1) and transposed (stride 1,
// m) A operands. bcol walks B's panel rows with stride bstride (16 when
// packed, n otherwise).
//
// The accumulators are individually named locals, NOT arrays: GCC at -O2
// does not promote indexed __m256 arrays to registers here, and the
// resulting stack spills in the kk loop cost ~3x throughput. Each output
// element still accumulates sequentially over kk in a single register,
// so tile row count never changes results.
#define TPR_TILE16_ROW_INIT(R)            \
  __m256 c##R##0 = _mm256_setzero_ps();   \
  __m256 c##R##1 = _mm256_setzero_ps();   \
  const float* a##R = abase + (R) * a_row_stride;
#define TPR_TILE16_ROW_FMA(R)                            \
  av = _mm256_broadcast_ss(a##R + ko);                   \
  c##R##0 = _mm256_fmadd_ps(av, b0, c##R##0);            \
  c##R##1 = _mm256_fmadd_ps(av, b1, c##R##1);
#define TPR_TILE16_ROW_STORE(R)                                            \
  o = out + (R) * static_cast<size_t>(ldc);                                \
  _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), c##R##0));         \
  _mm256_storeu_ps(o + 8, _mm256_add_ps(_mm256_loadu_ps(o + 8), c##R##1));

inline void Tile16R6(const float* abase, size_t a_row_stride,
                     size_t a_k_stride, int k, const float* bcol,
                     size_t bstride, float* out, int ldc) {
  TPR_TILE16_ROW_INIT(0) TPR_TILE16_ROW_INIT(1) TPR_TILE16_ROW_INIT(2)
  TPR_TILE16_ROW_INIT(3) TPR_TILE16_ROW_INIT(4) TPR_TILE16_ROW_INIT(5)
  for (int kk = 0; kk < k; ++kk) {
    const size_t ko = static_cast<size_t>(kk) * a_k_stride;
    const __m256 b0 = _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride);
    const __m256 b1 =
        _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride + 8);
    __m256 av;
    TPR_TILE16_ROW_FMA(0) TPR_TILE16_ROW_FMA(1) TPR_TILE16_ROW_FMA(2)
    TPR_TILE16_ROW_FMA(3) TPR_TILE16_ROW_FMA(4) TPR_TILE16_ROW_FMA(5)
  }
  float* o;
  TPR_TILE16_ROW_STORE(0) TPR_TILE16_ROW_STORE(1) TPR_TILE16_ROW_STORE(2)
  TPR_TILE16_ROW_STORE(3) TPR_TILE16_ROW_STORE(4) TPR_TILE16_ROW_STORE(5)
}

inline void Tile16R2(const float* abase, size_t a_row_stride,
                     size_t a_k_stride, int k, const float* bcol,
                     size_t bstride, float* out, int ldc) {
  TPR_TILE16_ROW_INIT(0) TPR_TILE16_ROW_INIT(1)
  for (int kk = 0; kk < k; ++kk) {
    const size_t ko = static_cast<size_t>(kk) * a_k_stride;
    const __m256 b0 = _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride);
    const __m256 b1 =
        _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride + 8);
    __m256 av;
    TPR_TILE16_ROW_FMA(0) TPR_TILE16_ROW_FMA(1)
  }
  float* o;
  TPR_TILE16_ROW_STORE(0) TPR_TILE16_ROW_STORE(1)
}

inline void Tile16R1(const float* abase, size_t a_row_stride,
                     size_t a_k_stride, int k, const float* bcol,
                     size_t bstride, float* out, int ldc) {
  TPR_TILE16_ROW_INIT(0)
  for (int kk = 0; kk < k; ++kk) {
    const size_t ko = static_cast<size_t>(kk) * a_k_stride;
    const __m256 b0 = _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride);
    const __m256 b1 =
        _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride + 8);
    __m256 av;
    TPR_TILE16_ROW_FMA(0)
  }
  float* o;
  TPR_TILE16_ROW_STORE(0)
}

#undef TPR_TILE16_ROW_INIT
#undef TPR_TILE16_ROW_FMA
#undef TPR_TILE16_ROW_STORE

// ROWS x 8 register tile for the 8..15-column tail.
template <int ROWS>
inline void Tile8(const float* abase, size_t a_row_stride, size_t a_k_stride,
                  int k, const float* bcol, size_t bstride, float* out,
                  int ldc) {
  __m256 acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride);
    for (int r = 0; r < ROWS; ++r) {
      const __m256 av = _mm256_broadcast_ss(
          abase + static_cast<size_t>(r) * a_row_stride +
          static_cast<size_t>(kk) * a_k_stride);
      acc[r] = _mm256_fmadd_ps(av, b0, acc[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    float* o = out + static_cast<size_t>(r) * ldc;
    _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), acc[r]));
  }
}

// Shared driver for out += op(A) * B with op(A) addressed through the
// two strides (see Tile16).
void GemmStridedA(const float* a, size_t a_row_stride, size_t a_k_stride,
                  const float* b, float* out, int m, int k, int n) {
  FloatBuffer pack;
  const bool do_pack = m >= kPackMinRows && n >= kPanel;
  if (do_pack) pack = FloatBuffer(static_cast<size_t>(k) * kPanel);

  int j = 0;
  for (; j + kPanel <= n; j += kPanel) {
    const float* bcol = b + j;
    size_t bstride = static_cast<size_t>(n);
    if (do_pack) {
      PackB16(b, k, n, j, pack.data());
      bcol = pack.data();
      bstride = kPanel;
    }
    int i = 0;
    for (; i + 6 <= m; i += 6) {
      Tile16R6(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, bcol, bstride,
               out + static_cast<size_t>(i) * n + j, n);
    }
    for (; i + 2 <= m; i += 2) {
      Tile16R2(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, bcol, bstride,
               out + static_cast<size_t>(i) * n + j, n);
    }
    for (; i < m; ++i) {
      Tile16R1(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, bcol, bstride,
               out + static_cast<size_t>(i) * n + j, n);
    }
  }
  if (j + 8 <= n) {
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      Tile8<4>(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, b + j, static_cast<size_t>(n),
               out + static_cast<size_t>(i) * n + j, n);
    }
    for (; i < m; ++i) {
      Tile8<1>(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, b + j, static_cast<size_t>(n),
               out + static_cast<size_t>(i) * n + j, n);
    }
    j += 8;
  }
  // Scalar column tail (< 8 columns): per-element dot over k, fixed order.
  for (; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const float* ar = a + static_cast<size_t>(i) * a_row_stride;
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        s += ar[static_cast<size_t>(kk) * a_k_stride] *
             b[static_cast<size_t>(kk) * n + j];
      }
      out[static_cast<size_t>(i) * n + j] += s;
    }
  }
}

}  // namespace

void GemmAcc(const float* a, const float* b, float* out, int m, int k,
             int n) {
  GemmStridedA(a, static_cast<size_t>(k), 1, b, out, m, k, n);
}

void GemmTransAAcc(const float* a, const float* b, float* out, int k, int m,
                   int n) {
  // A is k x m; element (i, kk) of A^T sits at a[kk * m + i].
  GemmStridedA(a, 1, static_cast<size_t>(m), b, out, m, k, n);
}

void GemmTransBAcc(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  // out[i, j] = dot(a_row_i, b_row_j): both rows contiguous, so this is
  // a vector dot with 4 B-rows sharing each A load.
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<size_t>(i) * k;
    float* out_row = out + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* b0 = b + static_cast<size_t>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      int kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 va = _mm256_loadu_ps(ar + kk);
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + kk), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + kk), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + kk), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + kk), acc3);
      }
      float t0 = Hsum(acc0), t1 = Hsum(acc1), t2 = Hsum(acc2),
            t3 = Hsum(acc3);
      for (; kk < k; ++kk) {
        const float av = ar[kk];
        t0 += av * b0[kk];
        t1 += av * b1[kk];
        t2 += av * b2[kk];
        t3 += av * b3[kk];
      }
      out_row[j] += t0;
      out_row[j + 1] += t1;
      out_row[j + 2] += t2;
      out_row[j + 3] += t3;
    }
    for (; j < n; ++j) {
      const float* br = b + static_cast<size_t>(j) * k;
      __m256 acc = _mm256_setzero_ps();
      int kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(ar + kk),
                              _mm256_loadu_ps(br + kk), acc);
      }
      float s = Hsum(acc);
      for (; kk < k; ++kk) s += ar[kk] * br[kk];
      out_row[j] += s;
    }
  }
}

namespace {

inline int32_t HsumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Sum of products of 16 int8 pairs: widen both sides to int16 and use
// madd_epi16 (each int32 lane gets one pair-sum; |p| <= 2 * 127^2 so no
// int16 stage can overflow). Integer adds are exact, so any summation
// order gives the same bits as the scalar kernel.
inline __m256i Dot16I8(const int8_t* a, const int8_t* b, __m256i acc) {
  const __m256i va =
      _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a)));
  const __m256i vb =
      _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
}

}  // namespace

void GemmInt8(const int8_t* a, const int8_t* bt, int32_t* out, int m, int k,
              int n) {
  // out[i, j] = dot(a_row_i, bt_row_j): the same contiguous-dot shape as
  // GemmTransBAcc, 16 bytes per step, 4 bt rows sharing each A load.
  for (int i = 0; i < m; ++i) {
    const int8_t* ar = a + static_cast<size_t>(i) * k;
    int32_t* out_row = out + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      const int8_t* b0 = bt + static_cast<size_t>(j) * k;
      const int8_t* b1 = b0 + k;
      const int8_t* b2 = b1 + k;
      const int8_t* b3 = b2 + k;
      int kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        acc0 = Dot16I8(ar + kk, b0 + kk, acc0);
        acc1 = Dot16I8(ar + kk, b1 + kk, acc1);
        acc2 = Dot16I8(ar + kk, b2 + kk, acc2);
        acc3 = Dot16I8(ar + kk, b3 + kk, acc3);
      }
      int32_t t0 = HsumI32(acc0), t1 = HsumI32(acc1), t2 = HsumI32(acc2),
              t3 = HsumI32(acc3);
      for (; kk < k; ++kk) {
        const int32_t av = ar[kk];
        t0 += av * b0[kk];
        t1 += av * b1[kk];
        t2 += av * b2[kk];
        t3 += av * b3[kk];
      }
      out_row[j] = t0;
      out_row[j + 1] = t1;
      out_row[j + 2] = t2;
      out_row[j + 3] = t3;
    }
    for (; j < n; ++j) {
      const int8_t* br = bt + static_cast<size_t>(j) * k;
      __m256i acc = _mm256_setzero_si256();
      int kk = 0;
      for (; kk + 16 <= k; kk += 16) acc = Dot16I8(ar + kk, br + kk, acc);
      int32_t s = HsumI32(acc);
      for (; kk < k; ++kk) {
        s += static_cast<int32_t>(ar[kk]) * static_cast<int32_t>(br[kk]);
      }
      out_row[j] = s;
    }
  }
}

namespace {

// 16 int16 pairs per step, both operands already widened: one madd and
// one add per 16 MACs, with no per-iteration sign extension.
inline __m256i Dot16I16(const int16_t* a, const int16_t* b, __m256i acc) {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
}

}  // namespace

void GemmInt8Wide(const int8_t* a, const int16_t* bt, int32_t* out, int m,
                  int k, int n) {
  // The weight panel is pre-widened by the caller. Up to kRowTile
  // activation rows are widened once into an L1-resident int16 tile and
  // the column loop runs OUTSIDE the row loop within each tile, so a
  // 4-channel weight block is pulled from L2 once per tile and then
  // served from L1 for every row — with a row-outer order the panel is
  // re-streamed per row and batched (m > 1) calls gain nothing over
  // m = 1. Each out[i, j] is still an independent exact dot product, so
  // results are identical for any m and to the scalar kernel.
  constexpr int kRowTile = 32;
  static thread_local std::vector<int16_t> a16_scratch;
  a16_scratch.resize(static_cast<size_t>(kRowTile) * k);
  int16_t* a16 = a16_scratch.data();
  for (int i0 = 0; i0 < m; i0 += kRowTile) {
    const int mt = m - i0 < kRowTile ? m - i0 : kRowTile;
    for (int i = 0; i < mt; ++i) {
      const int8_t* ar = a + static_cast<size_t>(i0 + i) * k;
      int16_t* dst = a16 + static_cast<size_t>(i) * k;
      int kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        const __m256i wide = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(ar + kk)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kk), wide);
      }
      for (; kk < k; ++kk) dst[kk] = ar[kk];
    }
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const int16_t* b0 = bt + static_cast<size_t>(j) * k;
      const int16_t* b1 = b0 + k;
      const int16_t* b2 = b1 + k;
      const int16_t* b3 = b2 + k;
      // 2-row x 4-channel register block: the four weight loads of each
      // k-step are shared by two activation rows (6 loads per 8 madds
      // instead of 10), which matters because the kernel is load-port
      // bound, not multiply bound. 8 accumulators + 4 weight + 2
      // activation registers fit the 16 ymm budget.
      int i = 0;
      for (; i + 2 <= mt; i += 2) {
        const int16_t* arow0 = a16 + static_cast<size_t>(i) * k;
        const int16_t* arow1 = arow0 + k;
        int32_t* out_row0 = out + static_cast<size_t>(i0 + i) * n;
        int32_t* out_row1 = out_row0 + n;
        __m256i acc00 = _mm256_setzero_si256();
        __m256i acc01 = _mm256_setzero_si256();
        __m256i acc02 = _mm256_setzero_si256();
        __m256i acc03 = _mm256_setzero_si256();
        __m256i acc10 = _mm256_setzero_si256();
        __m256i acc11 = _mm256_setzero_si256();
        __m256i acc12 = _mm256_setzero_si256();
        __m256i acc13 = _mm256_setzero_si256();
        int kk = 0;
        for (; kk + 16 <= k; kk += 16) {
          const __m256i vb0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(b0 + kk));
          const __m256i vb1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(b1 + kk));
          const __m256i vb2 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(b2 + kk));
          const __m256i vb3 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(b3 + kk));
          const __m256i va0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(arow0 + kk));
          const __m256i va1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(arow1 + kk));
          acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(va0, vb0));
          acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(va0, vb1));
          acc02 = _mm256_add_epi32(acc02, _mm256_madd_epi16(va0, vb2));
          acc03 = _mm256_add_epi32(acc03, _mm256_madd_epi16(va0, vb3));
          acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(va1, vb0));
          acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(va1, vb1));
          acc12 = _mm256_add_epi32(acc12, _mm256_madd_epi16(va1, vb2));
          acc13 = _mm256_add_epi32(acc13, _mm256_madd_epi16(va1, vb3));
        }
        int32_t t00 = HsumI32(acc00), t01 = HsumI32(acc01),
                t02 = HsumI32(acc02), t03 = HsumI32(acc03);
        int32_t t10 = HsumI32(acc10), t11 = HsumI32(acc11),
                t12 = HsumI32(acc12), t13 = HsumI32(acc13);
        for (; kk < k; ++kk) {
          const int32_t a0 = arow0[kk], a1 = arow1[kk];
          t00 += a0 * b0[kk];
          t01 += a0 * b1[kk];
          t02 += a0 * b2[kk];
          t03 += a0 * b3[kk];
          t10 += a1 * b0[kk];
          t11 += a1 * b1[kk];
          t12 += a1 * b2[kk];
          t13 += a1 * b3[kk];
        }
        out_row0[j] = t00;
        out_row0[j + 1] = t01;
        out_row0[j + 2] = t02;
        out_row0[j + 3] = t03;
        out_row1[j] = t10;
        out_row1[j + 1] = t11;
        out_row1[j + 2] = t12;
        out_row1[j + 3] = t13;
      }
      for (; i < mt; ++i) {
        const int16_t* arow = a16 + static_cast<size_t>(i) * k;
        int32_t* out_row = out + static_cast<size_t>(i0 + i) * n;
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        __m256i acc2 = _mm256_setzero_si256();
        __m256i acc3 = _mm256_setzero_si256();
        int kk = 0;
        for (; kk + 16 <= k; kk += 16) {
          acc0 = Dot16I16(arow + kk, b0 + kk, acc0);
          acc1 = Dot16I16(arow + kk, b1 + kk, acc1);
          acc2 = Dot16I16(arow + kk, b2 + kk, acc2);
          acc3 = Dot16I16(arow + kk, b3 + kk, acc3);
        }
        int32_t t0 = HsumI32(acc0), t1 = HsumI32(acc1), t2 = HsumI32(acc2),
                t3 = HsumI32(acc3);
        for (; kk < k; ++kk) {
          const int32_t av = arow[kk];
          t0 += av * b0[kk];
          t1 += av * b1[kk];
          t2 += av * b2[kk];
          t3 += av * b3[kk];
        }
        out_row[j] = t0;
        out_row[j + 1] = t1;
        out_row[j + 2] = t2;
        out_row[j + 3] = t3;
      }
    }
    for (; j < n; ++j) {
      const int16_t* br = bt + static_cast<size_t>(j) * k;
      for (int i = 0; i < mt; ++i) {
        const int16_t* arow = a16 + static_cast<size_t>(i) * k;
        __m256i acc = _mm256_setzero_si256();
        int kk = 0;
        for (; kk + 16 <= k; kk += 16) acc = Dot16I16(arow + kk, br + kk, acc);
        int32_t s = HsumI32(acc);
        for (; kk < k; ++kk) {
          s += static_cast<int32_t>(arow[kk]) * static_cast<int32_t>(br[kk]);
        }
        out[static_cast<size_t>(i0 + i) * n + j] = s;
      }
    }
  }
}

namespace {

// This TU is compiled with -mfma and the default -ffp-contract=fast, so
// GCC will happily fuse a mul_ps feeding an add_ps into one vfmadd —
// which rounds once where the scalar epilogue rounds twice and would
// break bitwise kernel-independence of the dequant path. The empty asm
// pins the product in a register, making the mul observable and
// therefore uncontractable. Costs nothing at runtime.
inline __m256 BlockFmaContraction(__m256 v) {
  asm("" : "+x"(v));
  return v;
}

}  // namespace

void DequantBias(const int32_t* acc, float a_scale, const float* b_scales,
                 const float* bias, float* y, int m, int n) {
  // Lane-wise the same op sequence as the scalar epilogue — convert,
  // multiply by (a_scale * b_scales[j]), add bias — with no FMA, so the
  // result is bitwise identical to the scalar kernel's.
  const __m256 va = _mm256_set1_ps(a_scale);
  for (int i = 0; i < m; ++i) {
    const int32_t* acc_row = acc + static_cast<size_t>(i) * n;
    float* y_row = y + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 s = _mm256_mul_ps(va, _mm256_loadu_ps(b_scales + j));
      const __m256 v = BlockFmaContraction(_mm256_mul_ps(
          _mm256_cvtepi32_ps(_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(acc_row + j))),
          s));
      _mm256_storeu_ps(
          y_row + j,
          bias != nullptr ? _mm256_add_ps(v, _mm256_loadu_ps(bias + j)) : v);
    }
    for (; j < n; ++j) {
      const float v = static_cast<float>(acc_row[j]) * (a_scale * b_scales[j]);
      y_row[j] = bias != nullptr ? v + bias[j] : v;
    }
  }
}

void DequantAcc(const int32_t* acc, float a_scale, const float* b_scales,
                float* y, int m, int n) {
  const __m256 va = _mm256_set1_ps(a_scale);
  for (int i = 0; i < m; ++i) {
    const int32_t* acc_row = acc + static_cast<size_t>(i) * n;
    float* y_row = y + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 s = _mm256_mul_ps(va, _mm256_loadu_ps(b_scales + j));
      const __m256 v = BlockFmaContraction(_mm256_mul_ps(
          _mm256_cvtepi32_ps(_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(acc_row + j))),
          s));
      _mm256_storeu_ps(y_row + j, _mm256_add_ps(_mm256_loadu_ps(y_row + j), v));
    }
    for (; j < n; ++j) {
      y_row[j] += static_cast<float>(acc_row[j]) * (a_scale * b_scales[j]);
    }
  }
}

void QuantizeRow(const float* x, float inv_scale, int8_t* q, int n) {
  // Round-to-nearest-even via _mm256_round_ps matches nearbyintf under
  // the default rounding mode; the clamp happens before conversion so
  // the int32 -> int8 packing never saturates differently from the
  // scalar path.
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256 vmax = _mm256_set1_ps(127.0f);
  const __m256 vmin = _mm256_set1_ps(-127.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 r = _mm256_round_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), vs),
                               _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    r = _mm256_min_ps(r, vmax);
    r = _mm256_max_ps(r, vmin);
    const __m256i vi = _mm256_cvtps_epi32(r);
    const __m128i v16 = _mm_packs_epi32(_mm256_castsi256_si128(vi),
                                        _mm256_extracti128_si256(vi, 1));
    const __m128i v8 = _mm_packs_epi16(v16, _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), v8);
  }
  for (; i < n; ++i) {
    float r = nearbyintf(x[i] * inv_scale);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<int8_t>(r);
  }
}

void HadamardAcc(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i),
                                       _mm256_loadu_ps(out + i));
    _mm256_storeu_ps(out + i, acc);
  }
  for (; i < n; ++i) out[i] += a[i] * b[i];
}

void AxpyAcc(float alpha, const float* x, float* y, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddAcc(const float* x, float* y, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

// ---------------------------------------------------------------------------
// Vector transcendentals + fused recurrent cell rows.
//
// Exp8 is the classic Cephes polynomial (range-reduce by powers of two,
// degree-5 minimax on the residual), accurate to ~2 ulp over the clamped
// range. Sigmoid/tanh derive from it with one division each. These do
// NOT produce the same bits as std::exp-based scalar math — which is
// fine: the avx2 kernel is already a distinct deterministic numeric
// domain (see kern.h). What matters for the batched-inference contract
// is that every row of a batch goes through the exact same lane-uniform
// code below, so batched rows stay bitwise equal to single-row calls
// under either kernel.
// ---------------------------------------------------------------------------

namespace {

inline __m256 Exp8(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647950f);
  const __m256 kLo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kHalf = _mm256_set1_ps(0.5f);
  const __m256 kOne = _mm256_set1_ps(1.0f);
  const __m256 kC1 = _mm256_set1_ps(0.693359375f);
  const __m256 kC2 = _mm256_set1_ps(-2.12194440e-4f);

  x = _mm256_min_ps(_mm256_max_ps(x, kLo), kHi);
  __m256 fx = _mm256_fmadd_ps(x, kLog2e, kHalf);
  fx = _mm256_floor_ps(fx);
  // Extended-precision x -= fx * ln2.
  x = _mm256_fnmadd_ps(fx, kC1, x);
  x = _mm256_fnmadd_ps(fx, kC2, x);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, kOne));

  // Scale by 2^fx through the exponent bits.
  const __m256i imm =
      _mm256_slli_epi32(_mm256_add_epi32(_mm256_cvttps_epi32(fx),
                                         _mm256_set1_epi32(0x7f)),
                        23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(imm));
}

inline __m256 Sigmoid8(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = Exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

inline __m256 Tanh8(__m256 x) {
  // tanh(x) = 1 - 2 / (exp(2x) + 1); saturates cleanly at both clamps.
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 e = Exp8(_mm256_mul_ps(two, x));
  return _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e, one)));
}

// One 8-lane column chunk of the LSTM cell. Sources may be staged
// (tail) or direct; the math is identical either way.
inline void LstmCell8(__m256 gi, __m256 gf, __m256 gg8, __m256 go,
                      __m256 cp, float* ai, float* af, float* ag, float* ao,
                      float* atc, float* oh, float* oc) {
  const __m256 ig = Sigmoid8(gi);
  const __m256 fg = Sigmoid8(gf);
  const __m256 gg = Tanh8(gg8);
  const __m256 og = Sigmoid8(go);
  const __m256 c = _mm256_fmadd_ps(fg, cp, _mm256_mul_ps(ig, gg));
  const __m256 tc = Tanh8(c);
  _mm256_storeu_ps(ai, ig);
  _mm256_storeu_ps(af, fg);
  _mm256_storeu_ps(ag, gg);
  _mm256_storeu_ps(ao, og);
  _mm256_storeu_ps(atc, tc);
  _mm256_storeu_ps(oh, _mm256_mul_ps(og, tc));
  _mm256_storeu_ps(oc, c);
}

inline void GruCell8(__m256 gir, __m256 giz, __m256 gin, __m256 ghr,
                     __m256 ghz, __m256 ghn, __m256 hp, float* ar, float* az,
                     float* an, float* oh) {
  const __m256 rg = Sigmoid8(_mm256_add_ps(gir, ghr));
  const __m256 zg = Sigmoid8(_mm256_add_ps(giz, ghz));
  const __m256 ng = Tanh8(_mm256_fmadd_ps(rg, ghn, gin));
  _mm256_storeu_ps(ar, rg);
  _mm256_storeu_ps(az, zg);
  _mm256_storeu_ps(an, ng);
  // Matches the unfused composition (n - z*n) + z*h_prev.
  const __m256 h =
      _mm256_fmadd_ps(zg, hp, _mm256_sub_ps(ng, _mm256_mul_ps(zg, ng)));
  _mm256_storeu_ps(oh, h);
}

}  // namespace

void LstmCellRow(const float* g, const float* c_prev, float* act, float* out,
                 int h) {
  int j = 0;
  for (; j + 8 <= h; j += 8) {
    LstmCell8(_mm256_loadu_ps(g + j), _mm256_loadu_ps(g + h + j),
              _mm256_loadu_ps(g + 2 * h + j), _mm256_loadu_ps(g + 3 * h + j),
              _mm256_loadu_ps(c_prev + j), act + j, act + h + j,
              act + 2 * h + j, act + 3 * h + j, act + 4 * h + j, out + j,
              out + h + j);
  }
  if (j < h) {
    // Stage the ragged tail through zero-padded buffers so every element
    // runs the same vector math regardless of h alignment.
    const int rem = h - j;
    alignas(32) float in[5][8] = {};
    alignas(32) float stage[7][8];
    for (int t = 0; t < rem; ++t) {
      in[0][t] = g[j + t];
      in[1][t] = g[h + j + t];
      in[2][t] = g[2 * h + j + t];
      in[3][t] = g[3 * h + j + t];
      in[4][t] = c_prev[j + t];
    }
    LstmCell8(_mm256_load_ps(in[0]), _mm256_load_ps(in[1]),
              _mm256_load_ps(in[2]), _mm256_load_ps(in[3]),
              _mm256_load_ps(in[4]), stage[0], stage[1], stage[2], stage[3],
              stage[4], stage[5], stage[6]);
    for (int t = 0; t < rem; ++t) {
      act[j + t] = stage[0][t];
      act[h + j + t] = stage[1][t];
      act[2 * h + j + t] = stage[2][t];
      act[3 * h + j + t] = stage[3][t];
      act[4 * h + j + t] = stage[4][t];
      out[j + t] = stage[5][t];
      out[h + j + t] = stage[6][t];
    }
  }
}

void GruCellRow(const float* gi, const float* gh, const float* h_prev,
                float* act, float* out, int h) {
  int j = 0;
  for (; j + 8 <= h; j += 8) {
    GruCell8(_mm256_loadu_ps(gi + j), _mm256_loadu_ps(gi + h + j),
             _mm256_loadu_ps(gi + 2 * h + j), _mm256_loadu_ps(gh + j),
             _mm256_loadu_ps(gh + h + j), _mm256_loadu_ps(gh + 2 * h + j),
             _mm256_loadu_ps(h_prev + j), act + j, act + h + j,
             act + 2 * h + j, out + j);
  }
  if (j < h) {
    const int rem = h - j;
    alignas(32) float in[7][8] = {};
    alignas(32) float stage[4][8];
    for (int t = 0; t < rem; ++t) {
      in[0][t] = gi[j + t];
      in[1][t] = gi[h + j + t];
      in[2][t] = gi[2 * h + j + t];
      in[3][t] = gh[j + t];
      in[4][t] = gh[h + j + t];
      in[5][t] = gh[2 * h + j + t];
      in[6][t] = h_prev[j + t];
    }
    GruCell8(_mm256_load_ps(in[0]), _mm256_load_ps(in[1]),
             _mm256_load_ps(in[2]), _mm256_load_ps(in[3]),
             _mm256_load_ps(in[4]), _mm256_load_ps(in[5]),
             _mm256_load_ps(in[6]), stage[0], stage[1], stage[2], stage[3]);
    for (int t = 0; t < rem; ++t) {
      act[j + t] = stage[0][t];
      act[h + j + t] = stage[1][t];
      act[2 * h + j + t] = stage[2][t];
      out[j + t] = stage[3][t];
    }
  }
}

}  // namespace tpr::kern::avx2
