// AVX2/FMA GEMM microkernels. This is the only TU compiled with
// -mavx2 -mfma; nothing here may run unless kern dispatch verified CPUID
// support. All loops use a fixed summation order, so results are
// deterministic for a pinned kernel — just not bitwise equal to scalar.
//
// Layout of the main kernels: 16-column panels of B (optionally packed
// contiguously when the row count amortises the copy), register tiles of
// up to 4 A-rows x 16 columns accumulated over the full K extent in ymm
// registers, then added into C once per tile. The A element stride is
// parameterised so the same microkernel serves both A and A^T operands.

#include <immintrin.h>

#include <cstddef>
#include <cstring>

#include "kern/arena.h"
#include "kern/kern_internal.h"

namespace tpr::kern::avx2 {

namespace {

constexpr int kPanel = 16;  // B panel width in floats (two ymm)

// Packing pays once a panel is reused across several row tiles.
constexpr int kPackMinRows = 8;

inline float Hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

// Copies the k x 16 column panel of b (k x n, row-major) at column j0
// into contiguous pb.
inline void PackB16(const float* b, int k, int n, int j0, float* pb) {
  for (int kk = 0; kk < k; ++kk) {
    std::memcpy(pb + static_cast<size_t>(kk) * kPanel,
                b + static_cast<size_t>(kk) * n + j0,
                kPanel * sizeof(float));
  }
}

// ROWS x 16 register tile: out[r, 0..16) += sum_kk A(r, kk) * B(kk, 0..16).
// A element (r, kk) sits at abase[r * a_row_stride + kk * a_k_stride] so
// the kernel serves both normal (stride k, 1) and transposed (stride 1,
// m) A operands. bcol walks B's panel rows with stride bstride (16 when
// packed, n otherwise).
template <int ROWS>
inline void Tile16(const float* abase, size_t a_row_stride,
                   size_t a_k_stride, int k, const float* bcol,
                   size_t bstride, float* out, int ldc) {
  __m256 acc0[ROWS], acc1[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride);
    const __m256 b1 =
        _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride + 8);
    for (int r = 0; r < ROWS; ++r) {
      const __m256 av = _mm256_broadcast_ss(
          abase + static_cast<size_t>(r) * a_row_stride +
          static_cast<size_t>(kk) * a_k_stride);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    float* o = out + static_cast<size_t>(r) * ldc;
    _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), acc0[r]));
    _mm256_storeu_ps(o + 8, _mm256_add_ps(_mm256_loadu_ps(o + 8), acc1[r]));
  }
}

// ROWS x 8 register tile for the 8..15-column tail.
template <int ROWS>
inline void Tile8(const float* abase, size_t a_row_stride, size_t a_k_stride,
                  int k, const float* bcol, size_t bstride, float* out,
                  int ldc) {
  __m256 acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bcol + static_cast<size_t>(kk) * bstride);
    for (int r = 0; r < ROWS; ++r) {
      const __m256 av = _mm256_broadcast_ss(
          abase + static_cast<size_t>(r) * a_row_stride +
          static_cast<size_t>(kk) * a_k_stride);
      acc[r] = _mm256_fmadd_ps(av, b0, acc[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    float* o = out + static_cast<size_t>(r) * ldc;
    _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), acc[r]));
  }
}

// Shared driver for out += op(A) * B with op(A) addressed through the
// two strides (see Tile16).
void GemmStridedA(const float* a, size_t a_row_stride, size_t a_k_stride,
                  const float* b, float* out, int m, int k, int n) {
  FloatBuffer pack;
  const bool do_pack = m >= kPackMinRows && n >= kPanel;
  if (do_pack) pack = FloatBuffer(static_cast<size_t>(k) * kPanel);

  int j = 0;
  for (; j + kPanel <= n; j += kPanel) {
    const float* bcol = b + j;
    size_t bstride = static_cast<size_t>(n);
    if (do_pack) {
      PackB16(b, k, n, j, pack.data());
      bcol = pack.data();
      bstride = kPanel;
    }
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      Tile16<4>(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
                a_k_stride, k, bcol, bstride,
                out + static_cast<size_t>(i) * n + j, n);
    }
    for (; i < m; ++i) {
      Tile16<1>(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
                a_k_stride, k, bcol, bstride,
                out + static_cast<size_t>(i) * n + j, n);
    }
  }
  if (j + 8 <= n) {
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      Tile8<4>(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, b + j, static_cast<size_t>(n),
               out + static_cast<size_t>(i) * n + j, n);
    }
    for (; i < m; ++i) {
      Tile8<1>(a + static_cast<size_t>(i) * a_row_stride, a_row_stride,
               a_k_stride, k, b + j, static_cast<size_t>(n),
               out + static_cast<size_t>(i) * n + j, n);
    }
    j += 8;
  }
  // Scalar column tail (< 8 columns): per-element dot over k, fixed order.
  for (; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const float* ar = a + static_cast<size_t>(i) * a_row_stride;
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        s += ar[static_cast<size_t>(kk) * a_k_stride] *
             b[static_cast<size_t>(kk) * n + j];
      }
      out[static_cast<size_t>(i) * n + j] += s;
    }
  }
}

}  // namespace

void GemmAcc(const float* a, const float* b, float* out, int m, int k,
             int n) {
  GemmStridedA(a, static_cast<size_t>(k), 1, b, out, m, k, n);
}

void GemmTransAAcc(const float* a, const float* b, float* out, int k, int m,
                   int n) {
  // A is k x m; element (i, kk) of A^T sits at a[kk * m + i].
  GemmStridedA(a, 1, static_cast<size_t>(m), b, out, m, k, n);
}

void GemmTransBAcc(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  // out[i, j] = dot(a_row_i, b_row_j): both rows contiguous, so this is
  // a vector dot with 4 B-rows sharing each A load.
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<size_t>(i) * k;
    float* out_row = out + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* b0 = b + static_cast<size_t>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      int kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 va = _mm256_loadu_ps(ar + kk);
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + kk), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + kk), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + kk), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + kk), acc3);
      }
      float t0 = Hsum(acc0), t1 = Hsum(acc1), t2 = Hsum(acc2),
            t3 = Hsum(acc3);
      for (; kk < k; ++kk) {
        const float av = ar[kk];
        t0 += av * b0[kk];
        t1 += av * b1[kk];
        t2 += av * b2[kk];
        t3 += av * b3[kk];
      }
      out_row[j] += t0;
      out_row[j + 1] += t1;
      out_row[j + 2] += t2;
      out_row[j + 3] += t3;
    }
    for (; j < n; ++j) {
      const float* br = b + static_cast<size_t>(j) * k;
      __m256 acc = _mm256_setzero_ps();
      int kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(ar + kk),
                              _mm256_loadu_ps(br + kk), acc);
      }
      float s = Hsum(acc);
      for (; kk < k; ++kk) s += ar[kk] * br[kk];
      out_row[j] += s;
    }
  }
}

void HadamardAcc(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i),
                                       _mm256_loadu_ps(out + i));
    _mm256_storeu_ps(out + i, acc);
  }
  for (; i < n; ++i) out[i] += a[i] * b[i];
}

void AxpyAcc(float alpha, const float* x, float* y, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void AddAcc(const float* x, float* y, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

}  // namespace tpr::kern::avx2
