#ifndef TPR_KERN_KERN_INTERNAL_H_
#define TPR_KERN_KERN_INTERNAL_H_

// Implementation split between kern.cc (dispatch + scalar) and
// gemm_avx2.cc (the only TU compiled with -mavx2 -mfma). When the
// toolchain cannot target AVX2 the avx2 TU is dropped and TPR_NO_AVX2 is
// defined; dispatch then never references these symbols.

#include <cstdint>

namespace tpr::kern::avx2 {

void GemmAcc(const float* a, const float* b, float* out, int m, int k, int n);
void GemmInt8(const int8_t* a, const int8_t* bt, int32_t* out, int m, int k,
              int n);
void GemmInt8Wide(const int8_t* a, const int16_t* btw, int32_t* out, int m,
                  int k, int n);
void DequantBias(const int32_t* acc, float a_scale, const float* b_scales,
                 const float* bias, float* y, int m, int n);
void DequantAcc(const int32_t* acc, float a_scale, const float* b_scales,
                float* y, int m, int n);
void QuantizeRow(const float* x, float inv_scale, int8_t* q, int n);
void GemmTransAAcc(const float* a, const float* b, float* out, int k, int m,
                   int n);
void GemmTransBAcc(const float* a, const float* b, float* out, int m, int k,
                   int n);
void HadamardAcc(const float* a, const float* b, float* out, int n);
void AxpyAcc(float alpha, const float* x, float* y, int n);
void AddAcc(const float* x, float* y, int n);
void LstmCellRow(const float* g, const float* c_prev, float* act, float* out,
                 int h);
void GruCellRow(const float* gi, const float* gh, const float* h_prev,
                float* act, float* out, int h);

}  // namespace tpr::kern::avx2

#endif  // TPR_KERN_KERN_INTERNAL_H_
