#ifndef TPR_KERN_KERN_H_
#define TPR_KERN_KERN_H_

// CPU kernel layer for the tensor/autograd hot path: the three GEMM
// accumulate variants behind nn::MatMul*Accumulate, plus the fused
// elementwise kernels used by the fused autograd ops.
//
// Every kernel exists in two implementations selected at runtime:
//
//   scalar — bit-compatible with the original blocked loops in
//            src/nn/tensor.cc; the reproducibility anchor.
//   avx2   — register-blocked, panel-packed AVX2/FMA microkernels.
//            Deterministic (fixed summation order) but a different
//            order than scalar, so results agree to ~1e-6 rel, not
//            bitwise.
//
// Selection: the TPR_KERNEL environment variable (scalar | avx2 | auto,
// default auto) resolved once on first use; `auto` picks avx2 iff the
// CPU supports AVX2+FMA. Pinning TPR_KERNEL makes any run bitwise
// reproducible on any machine. Requesting avx2 on hardware without it is
// a hard error, never a silent fallback. Tests and benches may switch
// kernels mid-process via SetKernel.

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace tpr::kern {

enum class Kernel { kScalar = 0, kAvx2 = 1 };

/// True when this binary and CPU can run the avx2 kernels.
bool CpuSupportsAvx2();

/// The kernel every dispatching entry point currently routes to.
/// Resolved from TPR_KERNEL on first call.
Kernel ActiveKernel();

/// Overrides the active kernel (tests, benches). Fatal if `k` is not
/// supported on this CPU.
void SetKernel(Kernel k);

/// "scalar" or "avx2".
const char* KernelName(Kernel k);

/// Parses a TPR_KERNEL value ("scalar" | "avx2" | "auto" | ""). Fatal on
/// unknown strings or when avx2 is requested but unsupported.
Kernel ResolveKernelSpec(const char* spec);

// ---------------------------------------------------------------------------
// GEMM accumulate kernels (row-major, raw pointers). All tolerate m, n,
// or k of zero.
// ---------------------------------------------------------------------------

/// out(m x n) += a(m x k) * b(k x n)
void GemmAcc(const float* a, const float* b, float* out, int m, int k, int n);

/// out(m x n) += a(k x m)^T * b(k x n)
void GemmTransAAcc(const float* a, const float* b, float* out, int k, int m,
                   int n);

/// out(m x n) += a(m x k) * b(n x k)^T
void GemmTransBAcc(const float* a, const float* b, float* out, int m, int k,
                   int n);

// ---------------------------------------------------------------------------
// Fused elementwise kernels. The scalar forms match the composition of
// the unfused autograd loops exactly; avx2 forms of the accumulators use
// FMA (same values to within one ulp per element).
// ---------------------------------------------------------------------------

/// y[i] = sigmoid(x[i] + b[i])   (numerically-stable two-branch sigmoid)
void AddSigmoid(const float* x, const float* b, float* y, int n);

/// y[i] = tanh(x[i] + b[i])
void AddTanh(const float* x, const float* b, float* y, int n);

/// out[i] += a[i] * b[i]         (Hadamard-accumulate)
void HadamardAcc(const float* a, const float* b, float* out, int n);

/// y[i] += alpha * x[i]
void AxpyAcc(float alpha, const float* x, float* y, int n);

/// y[i] += x[i]
void AddAcc(const float* x, float* y, int n);

// ---------------------------------------------------------------------------
// Int8 inference kernels (tpr::quant). Integer accumulation is exact, so
// — unlike the fp32 GEMMs above — the scalar and avx2 GemmInt8 produce
// bitwise-identical int32 results; the avx2 form only reorders an
// associative integer sum. The dequant epilogues are scalar-only (plain
// mul + add, no FMA) so the quantized forward is identical under either
// kernel up to the fused cell, which dispatches like the fp32 path.
// ---------------------------------------------------------------------------

/// out(m x n) = a(m x k, int8) * bt(n x k, int8)^T, int32 accumulation
/// (overwrite, not accumulate). bt holds the weight matrix pre-packed
/// with each output channel's k inputs contiguous, so every output
/// element is one contiguous int8 dot. 127 * 127 * k fits int32 for any
/// k < 2^16, far above every model shape here.
void GemmInt8(const int8_t* a, const int8_t* bt, int32_t* out, int m, int k,
              int n);

/// Same contract and bit-identical results as GemmInt8, but the packed
/// weight panel arrives pre-widened to int16 (btw[i] == int16(bt[i])).
/// The serving twin keeps this widened copy in memory beside the int8
/// artifact: the avx2 inner loop then loads 16 weight lanes per step
/// with no per-iteration sign extension, which is where the quantized
/// rung's encode-rate headroom over fp32 comes from. Integer math is
/// exact, so scalar, avx2, and GemmInt8 all agree bitwise.
void GemmInt8Wide(const int8_t* a, const int16_t* btw, int32_t* out, int m,
                  int k, int n);

/// y[i, j] = float(acc[i, j]) * (a_scale * b_scales[j]) + bias[j].
/// The per-channel dequant epilogue fused with the bias add. `bias` may
/// be null (treated as zero). Scalar on both kernels.
void DequantBias(const int32_t* acc, float a_scale, const float* b_scales,
                 const float* bias, float* y, int m, int n);

/// y[i, j] += float(acc[i, j]) * (a_scale * b_scales[j]). Accumulating
/// form for the second (recurrent) GEMM of a fused gate row.
void DequantAcc(const int32_t* acc, float a_scale, const float* b_scales,
                float* y, int m, int n);

/// q[i] = clamp(round-to-nearest-even(x[i] * inv_scale), -127, 127).
/// Symmetric int8 activation quantization; `inv_scale` is the
/// precomputed reciprocal so every caller rounds the same product.
void QuantizeRow(const float* x, float inv_scale, int8_t* q, int n);

/// Fused LSTM cell forward over one row. Reads the gate preactivations
/// g = [i | f | g | o] (4h) and the previous cell row c_prev (h); writes
/// the saved activations act = [i f g o tanh(c)] (5h) and the output row
/// out = [h_t | c_t] (2h). The scalar form is the reproducibility
/// anchor (std::exp-based); the avx2 form uses polynomial vector
/// transcendentals — deterministic, lane-uniform, and identical for a
/// row whether it is encoded alone or inside a padded batch.
void LstmCellRow(const float* g, const float* c_prev, float* act, float* out,
                 int h);

/// Fused GRU cell forward over one row: gi/gh = [r | z | n] input and
/// hidden gate preactivations (3h each), h_prev (h); writes act =
/// [r z n] (3h) and the new hidden row out (h).
void GruCellRow(const float* gi, const float* gh, const float* h_prev,
                float* act, float* out, int h);

/// Stable logistic sigmoid of one value (shared by scalar kernels and
/// the fused cell ops so every path computes the exact same bits).
inline float SigmoidScalar(float x) {
  return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                : std::exp(x) / (1.0f + std::exp(x));
}

}  // namespace tpr::kern

#endif  // TPR_KERN_KERN_H_
