#ifndef TPR_KERN_ARENA_H_
#define TPR_KERN_ARENA_H_

// Thread-local caching allocator for the tensor/autograd hot path.
//
// Every allocation is rounded up to a power-of-two bucket and, on free,
// parked on the current thread's free-list for that bucket instead of
// being returned to the system. After the first training step has warmed
// the lists, a steady-state step is served entirely from recycled blocks:
// the `nn.alloc_bytes` counter (fresh bytes fetched from the system) goes
// flat while `nn.arena_hits` keeps climbing. Blocks may be freed on a
// different thread than they were allocated on; ownership simply
// transfers to the freeing thread's lists, which keeps every list
// single-threaded and lock-free. Each tpr::par worker therefore owns an
// independent arena for its replica graphs.
//
// Lifetime: arenas die with their thread (releasing every cached block).
// Frees that happen after the owning thread's arena is destroyed — e.g.
// process-exit statics — fall back to the system allocator.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace tpr::kern {

/// Allocates `bytes` (64-byte aligned) from the calling thread's arena.
/// Contents are uninitialized (recycled blocks keep stale data).
/// Returns nullptr for bytes == 0.
void* ArenaAlloc(size_t bytes);

/// Returns a block obtained from ArenaAlloc to the calling thread's
/// arena. `bytes` must be the size passed to ArenaAlloc.
void ArenaFree(void* p, size_t bytes) noexcept;

/// Rounded bucket size actually reserved for a request of `bytes`.
size_t ArenaBucketBytes(size_t bytes);

struct ArenaStats {
  uint64_t hits = 0;          // allocations served from a free-list
  uint64_t misses = 0;        // allocations that hit the system allocator
  uint64_t alloc_bytes = 0;   // total fresh bytes fetched from the system
  uint64_t cached_bytes = 0;  // bytes currently parked on free-lists
  uint64_t cached_blocks = 0;
};

/// Statistics of the calling thread's arena.
ArenaStats ThreadArenaStats();

/// Releases every cached block of the calling thread's arena back to the
/// system. Subsequent allocations miss until the lists re-warm. Returns
/// the number of bytes released.
uint64_t TrimThreadArena();

/// STL-compatible allocator over the thread arena. Used for the autograd
/// graph's node storage, parent lists, and backward closures so tape
/// bookkeeping recycles like tensor data does.
template <typename T>
struct ArenaStlAllocator {
  using value_type = T;
  ArenaStlAllocator() noexcept = default;
  template <typename U>
  ArenaStlAllocator(const ArenaStlAllocator<U>&) noexcept {}
  T* allocate(size_t n) {
    return static_cast<T*>(ArenaAlloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ArenaFree(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const ArenaStlAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const ArenaStlAllocator<U>&) const noexcept {
    return false;
  }
};

/// Shorthand for an arena-backed std::vector.
template <typename T>
using ArenaVector = std::vector<T, ArenaStlAllocator<T>>;

/// Arena-backed float storage underlying nn::Tensor. Value semantics
/// (deep copy), moves steal the block.
class FloatBuffer {
 public:
  FloatBuffer() = default;
  explicit FloatBuffer(size_t n) : n_(n) {
    if (n != 0) ptr_ = static_cast<float*>(ArenaAlloc(n * sizeof(float)));
  }
  FloatBuffer(const FloatBuffer& o) : FloatBuffer(o.n_) {
    if (n_ != 0) std::memcpy(ptr_, o.ptr_, n_ * sizeof(float));
  }
  FloatBuffer& operator=(const FloatBuffer& o) {
    if (this == &o) return *this;
    if (n_ != o.n_) {
      Release();
      n_ = o.n_;
      if (n_ != 0) ptr_ = static_cast<float*>(ArenaAlloc(n_ * sizeof(float)));
    }
    if (n_ != 0) std::memcpy(ptr_, o.ptr_, n_ * sizeof(float));
    return *this;
  }
  FloatBuffer(FloatBuffer&& o) noexcept : ptr_(o.ptr_), n_(o.n_) {
    o.ptr_ = nullptr;
    o.n_ = 0;
  }
  FloatBuffer& operator=(FloatBuffer&& o) noexcept {
    if (this == &o) return *this;
    Release();
    ptr_ = std::exchange(o.ptr_, nullptr);
    n_ = std::exchange(o.n_, 0);
    return *this;
  }
  ~FloatBuffer() { Release(); }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  float& operator[](size_t i) { return ptr_[i]; }
  float operator[](size_t i) const { return ptr_[i]; }

  void Fill(float v) {
    if (n_ == 0) return;
    if (v == 0.0f) {
      std::memset(ptr_, 0, n_ * sizeof(float));
    } else {
      for (size_t i = 0; i < n_; ++i) ptr_[i] = v;
    }
  }

 private:
  void Release() noexcept {
    if (ptr_ != nullptr) ArenaFree(ptr_, n_ * sizeof(float));
    ptr_ = nullptr;
    n_ = 0;
  }
  float* ptr_ = nullptr;
  size_t n_ = 0;
};

/// Move-only type-erased callable whose captures live inline or in the
/// arena — the std::function replacement for backward closures, which
/// would otherwise heap-allocate once per recorded op.
template <typename Sig>
class ArenaFn;

template <typename R, typename... Args>
class ArenaFn<R(Args...)> {
  static constexpr size_t kInlineBytes = 160;

 public:
  ArenaFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ArenaFn>>>
  ArenaFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      new (inline_) Fn(std::forward<F>(f));
      target_ = inline_;
    } else {
      target_ = ArenaAlloc(sizeof(Fn));
      new (target_) Fn(std::forward<F>(f));
      heap_bytes_ = sizeof(Fn);
    }
    invoke_ = [](void* t, Args... args) -> R {
      return (*static_cast<Fn*>(t))(std::forward<Args>(args)...);
    };
    destroy_ = [](void* t) { static_cast<Fn*>(t)->~Fn(); };
    relocate_ = [](void* dst, void* src) {
      new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    };
  }

  ArenaFn(ArenaFn&& o) noexcept { MoveFrom(o); }
  ArenaFn& operator=(ArenaFn&& o) noexcept {
    if (this == &o) return *this;
    Reset();
    MoveFrom(o);
    return *this;
  }
  ArenaFn(const ArenaFn&) = delete;
  ArenaFn& operator=(const ArenaFn&) = delete;
  ~ArenaFn() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(target_, std::forward<Args>(args)...);
  }

 private:
  void Reset() noexcept {
    if (invoke_ == nullptr) return;
    destroy_(target_);
    if (heap_bytes_ != 0) ArenaFree(target_, heap_bytes_);
    invoke_ = nullptr;
    destroy_ = nullptr;
    relocate_ = nullptr;
    target_ = nullptr;
    heap_bytes_ = 0;
  }
  void MoveFrom(ArenaFn& o) noexcept {
    if (o.invoke_ == nullptr) return;
    invoke_ = o.invoke_;
    destroy_ = o.destroy_;
    relocate_ = o.relocate_;
    heap_bytes_ = o.heap_bytes_;
    if (o.heap_bytes_ != 0) {
      target_ = o.target_;  // steal the arena block
    } else {
      relocate_(inline_, o.inline_);
      target_ = inline_;
    }
    o.invoke_ = nullptr;
    o.destroy_ = nullptr;
    o.relocate_ = nullptr;
    o.target_ = nullptr;
    o.heap_bytes_ = 0;
  }

  alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
  void* target_ = nullptr;
  size_t heap_bytes_ = 0;
  R (*invoke_)(void*, Args...) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
};

}  // namespace tpr::kern

#endif  // TPR_KERN_ARENA_H_
