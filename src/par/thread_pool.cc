#include "par/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tpr::par {
namespace {

// Identity of the current thread inside a pool. The caller of a pool (or
// any thread that never entered one) has index 0 and a null pool.
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_worker_index = 0;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-worker busy/idle accounting, accumulated in microsecond counters
// (par.worker<i>.busy_us / .idle_us). Guarded on MetricsEnabled so the
// disabled path never reads the clock or builds a name.
void AddWorkerTime(int worker_index, const char* kind, double seconds) {
  obs::GetCounter("par.worker" + std::to_string(worker_index) + "." + kind)
      .Add(static_cast<uint64_t>(seconds * 1e6));
}

}  // namespace

int WorkerIndex() { return t_worker_index; }

int ConfiguredThreads() {
  if (const char* s = std::getenv("TPR_THREADS")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

struct ThreadPool::ForState {
  int n = 0;
  const std::function<void(int)>* fn = nullptr;
  std::atomic<int> next{0};
  std::atomic<bool> abort{false};
  std::mutex m;
  std::condition_variable done_cv;
  int done = 0;  // iterations finished or skipped, guarded by m
  // The propagated exception: among all iterations that threw before the
  // abort flag stopped the loop, the one with the smallest index wins.
  // With a single failing index this makes the rethrown exception
  // deterministic at any thread count. Guarded by m.
  std::exception_ptr error;
  int error_index = -1;
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::InsidePool() const { return t_pool == this; }

void ThreadPool::Enqueue(std::function<void()> job) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (obs::MetricsEnabled()) {
    obs::GetGauge("par.queue_depth").Set(static_cast<double>(depth));
  }
  obs::TraceCounter("par.queue_depth", static_cast<double>(depth));
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_pool = this;
  t_worker_index = worker_index;
  obs::SetTraceThreadName("par.worker " + std::to_string(worker_index));
  for (;;) {
    std::function<void()> job;
    const bool observe = obs::MetricsEnabled();
    const double wait_start = observe ? NowSeconds() : 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (observe) {
          AddWorkerTime(worker_index, "idle_us", NowSeconds() - wait_start);
        }
        return;  // stop_ set and queue drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double job_start = observe ? NowSeconds() : 0.0;
    try {
      obs::ScopedSpan span("par.task");
      job();
    } catch (...) {
      // Jobs enqueued by Submit/ParallelFor capture their own exceptions;
      // anything arriving here escaped that wrapping (an instrumentation
      // allocation failure, a raw Enqueue) and would otherwise
      // std::terminate the process from a worker thread. Contain it: the
      // pool survives, the job is reported lost.
      obs::GetCounter("par.worker_job_crashes").Add(1);
      TPR_LOG(Error) << "thread-pool worker " << worker_index
                     << " caught an exception that escaped its job; "
                        "dropping the job and continuing";
    }
    if (observe) {
      const double job_end = NowSeconds();
      AddWorkerTime(worker_index, "idle_us", job_start - wait_start);
      AddWorkerTime(worker_index, "busy_us", job_end - job_start);
      obs::GetCounter("par.tasks").Add();
      obs::GetHistogram("par.task_seconds").Observe(job_end - job_start);
    }
  }
}

void ThreadPool::RunForChunk(const std::shared_ptr<ForState>& state) {
  int finished = 0;
  std::exception_ptr error;
  int error_index = -1;
  for (;;) {
    const int i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) break;
    if (!state->abort.load(std::memory_order_relaxed)) {
      try {
        (*state->fn)(i);
      } catch (...) {
        // Indices are claimed in ascending order, so this participant's
        // first error is also its smallest-index one.
        if (!error) {
          error = std::current_exception();
          error_index = i;
        }
        state->abort.store(true, std::memory_order_relaxed);
      }
    }
    ++finished;
  }
  // Iterations claimed by this participant: the spread across
  // participants is the shard-imbalance signal.
  if (obs::MetricsEnabled()) {
    obs::GetHistogram("par.for_iters_per_worker",
                      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                       256.0, 1024.0, 4096.0})
        .Observe(static_cast<double>(finished));
  }
  if (finished > 0 || error) {
    std::lock_guard<std::mutex> lock(state->m);
    state->done += finished;
    if (error &&
        (!state->error || error_index < state->error_index)) {
      state->error = error;
      state->error_index = error_index;
    }
    if (state->done == state->n) state->done_cv.notify_all();
  }
}

void ThreadPool::RunOnAllWorkers(const std::function<void(int)>& fn) {
  if (InsidePool() || num_threads_ == 1) {
    fn(WorkerIndex());
    return;
  }
  // Each worker claims one slot, then waits until every worker has one:
  // the rendezvous guarantees no worker runs fn twice even though the
  // queue does not address threads directly.
  struct Rendezvous {
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    int expected = 0;
  };
  auto rv = std::make_shared<Rendezvous>();
  rv->expected = num_threads_ - 1;
  // Workers hold their own copy of fn so a caller-side exception can
  // never leave them with a dangling reference.
  auto shared_fn = std::make_shared<const std::function<void(int)>>(fn);
  std::vector<std::future<void>> futs;
  futs.reserve(rv->expected);
  for (int w = 0; w < rv->expected; ++w) {
    futs.push_back(Submit([rv, shared_fn] {
      {
        std::unique_lock<std::mutex> lock(rv->m);
        if (++rv->arrived == rv->expected) {
          rv->cv.notify_all();
        } else {
          rv->cv.wait(lock, [&] { return rv->arrived == rv->expected; });
        }
      }
      (*shared_fn)(WorkerIndex());
    }));
  }
  std::exception_ptr caller_error;
  try {
    fn(0);  // the caller participates as slot 0
  } catch (...) {
    caller_error = std::current_exception();
  }
  for (auto& f : futs) f.get();
  if (caller_error) std::rethrow_exception(caller_error);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (InsidePool() || num_threads_ == 1 || n == 1) {
    // Inline: either nested inside a pool task (spawning helpers could
    // deadlock on a saturated queue) or there is nothing to fan out to.
    // Nested (inside-pool) loops are not spanned: their time is already
    // inside the enclosing par.task span.
    if (!InsidePool()) {
      obs::ScopedSpan span("par.parallel_for", "n", n);
      for (int i = 0; i < n; ++i) fn(i);
    } else {
      for (int i = 0; i < n; ++i) fn(i);
    }
    return;
  }
  obs::ScopedSpan span("par.parallel_for", "n", n);
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  const int helpers = std::min(num_threads_ - 1, n - 1);
  for (int h = 0; h < helpers; ++h) {
    Enqueue([state] { RunForChunk(state); });
  }
  RunForChunk(state);  // the caller works too, as slot 0
  std::unique_lock<std::mutex> lock(state->m);
  state->done_cv.wait(lock, [&] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

std::mutex g_default_pool_mu;
std::unique_ptr<ThreadPool> g_default_pool;

}  // namespace

ThreadPool& DefaultPool() {
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(ConfiguredThreads());
  }
  return *g_default_pool;
}

void SetDefaultThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  g_default_pool.reset();
  g_default_pool = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace tpr::par
