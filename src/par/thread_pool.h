#ifndef TPR_PAR_THREAD_POOL_H_
#define TPR_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tpr::par {

/// Worker slot of the calling thread: 0 for a pool's caller thread (and
/// any thread outside a pool), 1..num_threads-1 for pool workers. Stable
/// for the lifetime of the thread, so callers can index per-worker
/// scratch state (e.g. model replicas) without locks.
int WorkerIndex();

/// Thread count requested via the TPR_THREADS environment variable,
/// falling back to std::thread::hardware_concurrency(). Always >= 1.
int ConfiguredThreads();

/// A fixed-size FIFO thread pool (no work stealing). `num_threads`
/// counts the caller: a pool of size N spawns N-1 background workers and
/// the caller participates in ParallelFor. Tasks submitted from inside a
/// pool worker run inline, which makes nested Submit/ParallelFor calls
/// deadlock-free.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until
  /// all iterations finish. The caller executes iterations too. Indices
  /// are claimed dynamically; each runs exactly once on exactly one
  /// thread. Exceptions from fn never reach std::terminate: the loop
  /// stops claiming new iterations, every participant joins, and the
  /// smallest-index exception among those that fired is rethrown HERE on
  /// the calling thread (deterministic when a single index throws).
  /// Safe to call from inside a pool task: it then runs the whole loop
  /// inline on the current thread.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Runs fn(worker_index) exactly once on EVERY thread of the pool —
  /// each background worker plus the calling thread — and blocks until
  /// all have finished. Unlike ParallelFor, placement is by thread, not
  /// by dynamic index claim, so this is the tool for maintaining
  /// per-thread state (trimming thread-local arenas, flushing caches).
  /// The workers rendezvous inside the call, so it must not run
  /// concurrently with other pool work. Called from inside a pool task
  /// it degrades to fn(WorkerIndex()) on the current thread only.
  void RunOnAllWorkers(const std::function<void(int)>& fn);

  /// Enqueues a task and returns its future. When called from inside a
  /// pool worker the task runs inline (nested-submit safety) and the
  /// returned future is already ready.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (InsidePool()) {
      (*task)();
    } else {
      Enqueue([task] { (*task)(); });
    }
    return fut;
  }

 private:
  struct ForState;

  /// True when the current thread is one of this pool's workers.
  bool InsidePool() const;
  void Enqueue(std::function<void()> job);
  void WorkerLoop(int worker_index);
  static void RunForChunk(const std::shared_ptr<ForState>& state);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool, lazily created with ConfiguredThreads()
/// workers. All library parallel loops run on this pool so that one
/// TPR_THREADS setting governs the whole process.
ThreadPool& DefaultPool();

/// Rebuilds the default pool with the given thread count. Test-only:
/// must not race with running work on the old pool.
void SetDefaultThreads(int num_threads);

}  // namespace tpr::par

#endif  // TPR_PAR_THREAD_POOL_H_
