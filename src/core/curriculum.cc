#include "core/curriculum.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace tpr::core {
namespace {

double CosineOfVectors(const std::vector<float>& a,
                       const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

}  // namespace

std::vector<std::vector<int>> SplitMetaSets(const synth::CityDataset& data,
                                            const std::vector<int>& indices,
                                            int n) {
  TPR_CHECK(n >= 1);
  std::vector<int> sorted = indices;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    return data.network->PathLength(data.unlabeled[a].path) <
           data.network->PathLength(data.unlabeled[b].path);
  });
  std::vector<std::vector<int>> meta_sets(n);
  const size_t per_set = (sorted.size() + n - 1) / n;
  for (size_t i = 0; i < sorted.size(); ++i) {
    meta_sets[std::min<size_t>(i / per_set, n - 1)].push_back(sorted[i]);
  }
  // Drop empty trailing sets (tiny inputs with n > |indices|).
  while (!meta_sets.empty() && meta_sets.back().empty()) meta_sets.pop_back();
  return meta_sets;
}

StatusOr<std::vector<ScoredSample>> EvaluateDifficulty(
    std::shared_ptr<const FeatureSpace> features, const WscConfig& wsc_config,
    const CurriculumConfig& config, const std::vector<int>& indices) {
  const auto& data = *features->data;
  auto meta_sets = SplitMetaSets(data, indices, config.num_meta_sets);
  const int n = static_cast<int>(meta_sets.size());
  if (n == 0) return Status::InvalidArgument("no samples to score");

  // Train one expert per meta-set. Experts are fully independent (own
  // seed, own optimizer, own data shard), so they train concurrently;
  // each expert's construction and updates are deterministic functions
  // of its config alone, so the result is thread-count invariant.
  std::vector<std::unique_ptr<WscModel>> experts(n);
  std::vector<Status> expert_status(n, Status::OK());
  {
    obs::ScopedSpan experts_span("curriculum.train_experts", "experts", n);
    par::DefaultPool().ParallelFor(n, [&](int j) {
      obs::ScopedSpan expert_span("curriculum.expert", "expert", j);
      Stopwatch expert_sw;
      WscConfig expert_config = wsc_config;
      expert_config.seed = wsc_config.seed + 1000 + j;
      expert_config.encoder.seed = wsc_config.encoder.seed + 1000 + j;
      experts[j] = std::make_unique<WscModel>(features, expert_config);
      for (int epoch = 0; epoch < config.expert_epochs; ++epoch) {
        auto loss = experts[j]->TrainEpoch(meta_sets[j]);
        if (!loss.ok()) {
          expert_status[j] = loss.status();
          return;
        }
      }
      if (obs::MetricsEnabled()) {
        obs::GetHistogram("curriculum.expert_seconds")
            .Observe(expert_sw.ElapsedSeconds());
      }
    });
  }
  for (const auto& st : expert_status) {
    if (!st.ok()) return st;
  }

  // Score every sample: sum of cosine similarities between its own
  // expert's TPR and every other expert's TPR (Eq. 13). Encoding is a
  // const forward pass, so samples score in parallel into fixed slots.
  std::vector<std::pair<int, int>> todo;  // (meta-set, pool index)
  todo.reserve(indices.size());
  for (int j = 0; j < n; ++j) {
    for (int idx : meta_sets[j]) todo.emplace_back(j, idx);
  }
  obs::ScopedSpan score_span("curriculum.score_samples", "samples",
                             static_cast<double>(todo.size()));
  std::vector<ScoredSample> scored(todo.size());
  par::DefaultPool().ParallelFor(
      static_cast<int>(todo.size()), [&](int t) {
        const auto [j, idx] = todo[t];
        const auto& sample = data.unlabeled[idx];
        const auto own =
            experts[j]->Encode(sample.path, sample.depart_time_s);
        double score = 0.0;
        for (int k = 0; k < n; ++k) {
          if (k == j) continue;
          const auto other =
              experts[k]->Encode(sample.path, sample.depart_time_s);
          score += CosineOfVectors(own, other);
        }
        scored[t] = {idx, score};
      });
  return scored;
}

std::vector<std::vector<int>> BuildStages(std::vector<ScoredSample> scored,
                                          int num_stages, Rng& rng) {
  TPR_CHECK(num_stages >= 1);
  // Higher score = easier; easy samples come first (Section VI-C).
  std::sort(scored.begin(), scored.end(),
            [](const ScoredSample& a, const ScoredSample& b) {
              return a.score > b.score;
            });
  std::vector<std::vector<int>> stages(num_stages);
  const size_t per_stage = (scored.size() + num_stages - 1) / num_stages;
  for (size_t i = 0; i < scored.size(); ++i) {
    stages[std::min<size_t>(i / per_stage, num_stages - 1)].push_back(
        scored[i].index);
  }
  while (!stages.empty() && stages.back().empty()) stages.pop_back();
  // Local shuffling within each stage preserves some variation.
  for (auto& stage : stages) rng.Shuffle(stage);
  return stages;
}

StatusOr<std::vector<std::vector<int>>> BuildCurriculum(
    std::shared_ptr<const FeatureSpace> features, const WscConfig& wsc_config,
    const CurriculumConfig& config, const std::vector<int>& indices) {
  Rng rng(wsc_config.seed + 77);
  switch (config.strategy) {
    case CurriculumStrategy::kNone: {
      std::vector<int> all = indices;
      rng.Shuffle(all);
      return std::vector<std::vector<int>>{std::move(all)};
    }
    case CurriculumStrategy::kHeuristic: {
      const auto& data = *features->data;
      std::vector<ScoredSample> scored;
      scored.reserve(indices.size());
      for (int idx : indices) {
        // Shorter paths are treated as easier: score = -#edges.
        scored.push_back(
            {idx, -static_cast<double>(data.unlabeled[idx].path.size())});
      }
      return BuildStages(std::move(scored), config.num_meta_sets, rng);
    }
    case CurriculumStrategy::kLearned: {
      auto scored = EvaluateDifficulty(features, wsc_config, config, indices);
      if (!scored.ok()) return scored.status();
      return BuildStages(std::move(scored).value(), config.num_meta_sets, rng);
    }
  }
  return Status::InvalidArgument("unknown curriculum strategy");
}

}  // namespace tpr::core
