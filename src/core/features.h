#ifndef TPR_CORE_FEATURES_H_
#define TPR_CORE_FEATURES_H_

#include <memory>

#include "graph/temporal_graph.h"
#include "node2vec/node2vec.h"
#include "synth/dataset.h"
#include "util/status.h"

namespace tpr::core {

/// Dimensions and node2vec settings for the input feature space shared by
/// the temporal path encoder and several baselines.
struct FeatureConfig {
  /// node2vec dimensionality on the road-network topology graph; the
  /// per-edge topology feature is [n_from, n_to] of twice this size
  /// (paper Eq. 5, d_top = 2 * road_embedding_dim).
  int road_embedding_dim = 8;

  /// node2vec dimensionality on the temporal graph (d_tem, Eq. 2).
  int temporal_embedding_dim = 16;

  /// Temporal graph resolution. The paper uses 288 five-minute slots; a
  /// coarser grid keeps CPU experiments fast without changing structure.
  graph::TemporalGraphConfig temporal_graph;

  node2vec::Node2VecConfig node2vec;
};

/// Precomputed, frozen representation inputs for one city dataset:
/// node2vec embeddings of road-network nodes (topology features, Eq. 5)
/// and of temporal-graph nodes (temporal features, Eq. 2). Computed once
/// per dataset and shared by every model trained on it.
struct FeatureSpace {
  FeatureConfig config;
  std::shared_ptr<const synth::CityDataset> data;
  node2vec::NodeEmbeddings road_embeddings;      // per road-network node
  node2vec::NodeEmbeddings temporal_embeddings;  // per temporal-graph node

  /// Temporal-graph node id for a departure time.
  int TemporalNodeFor(int64_t depart_time_s) const {
    return graph::TemporalNodeIdForTime(config.temporal_graph, depart_time_s);
  }
};

/// Runs node2vec on the road-network topology graph and on the temporal
/// graph of the dataset's week.
StatusOr<FeatureSpace> BuildFeatureSpace(
    std::shared_ptr<const synth::CityDataset> data,
    const FeatureConfig& config);

}  // namespace tpr::core

#endif  // TPR_CORE_FEATURES_H_
