#ifndef TPR_CORE_ENCODER_H_
#define TPR_CORE_ENCODER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/features.h"
#include "nn/modules.h"
#include "nn/transformer.h"

namespace tpr::core {

/// Sequence model used by the encoder. The paper uses an LSTM (Eq. 7) and
/// notes that "more advanced sequential models, e.g., Transformer" are
/// possible; both are provided.
enum class SequenceModel { kLstm, kTransformer };

/// How the spatio-temporal edge representations are aggregated into the
/// TPR. The paper uses the mean (Eq. 8); max pooling and last-hidden-state
/// are provided for the aggregation ablation.
enum class Aggregation { kMean, kMax, kLast };

/// Hyper-parameters of the temporal path encoder (paper Section IV).
/// Dimensions default to a CPU-friendly scale; the paper's configuration
/// is d_rt=64, d_l=32, d_o=16, d_ts=16, d_h=128, 2 LSTM layers.
struct EncoderConfig {
  int d_rt = 8;          // road type embedding
  int d_lanes = 4;       // number-of-lanes embedding
  int d_oneway = 2;      // one-way flag embedding
  int d_signal = 2;      // traffic-signal flag embedding
  int d_hidden = 128;    // d_h: LSTM hidden size == TPR dimensionality (paper value)
  int lstm_layers = 2;
  SequenceModel sequence_model = SequenceModel::kLstm;
  Aggregation aggregation = Aggregation::kMean;
  /// When false the temporal channel is dropped entirely (the WSCCL-NT
  /// ablation of Table VIII).
  bool use_temporal = true;

  /// Contrastive projection head (SupCon practice, which the paper builds
  /// on): the WSC losses are computed on a learned projection of the TPR
  /// and of the edge representations, while downstream tasks consume the
  /// pre-projection TPR. This keeps the representation informative while
  /// the head absorbs the purely discriminative warping.
  bool use_projection_head = true;
  int projection_dim = 32;

  uint64_t seed = 31;
};

/// One (path, departure time) item of a batched encode. The path is
/// borrowed — the caller keeps it alive for the duration of the call.
struct PathTimeItem {
  const graph::Path* path = nullptr;
  int64_t depart_time_s = 0;
};

/// Output of encoding one temporal path.
struct EncodedPath {
  nn::Var tpr;        // 1 x d_h temporal path representation (Eq. 8)
  nn::Var edge_reps;  // T x d_h spatio-temporal edge representations (Eq. 7)
  // Projection-head outputs consumed by the contrastive losses. Equal to
  // tpr / edge_reps when the head is disabled.
  nn::Var tpr_proj;
  nn::Var edge_reps_proj;
};

/// The temporal path encoder: spatial embedding (Eq. 3-6) + temporal
/// embedding (Eq. 2) -> 2-layer LSTM (Eq. 7) -> mean aggregation (Eq. 8).
///
/// The node2vec topology and temporal vectors are frozen inputs; the
/// categorical feature embeddings and the LSTM are trained end to end.
class TemporalPathEncoder : public nn::Module {
 public:
  TemporalPathEncoder(std::shared_ptr<const FeatureSpace> features,
                      const EncoderConfig& config);

  /// Encodes a temporal path (edge sequence + departure time).
  EncodedPath Encode(const graph::Path& path, int64_t depart_time_s) const;

  /// Encodes and returns the TPR values only, without building an autograd
  /// graph (for downstream probes).
  std::vector<float> EncodeValue(const graph::Path& path,
                                 int64_t depart_time_s) const;

  /// Like EncodeValue, but polls `cancelled` between pipeline stages
  /// (feature assembly, sequence model, aggregation/projection) and
  /// returns nullopt as soon as it observes true. This is how
  /// tpr::serve propagates request deadlines into a forward pass that
  /// is already running: cancellation is cooperative and stage-granular,
  /// never mid-matmul.
  std::optional<std::vector<float>> EncodeValueCancellable(
      const graph::Path& path, int64_t depart_time_s,
      const std::function<bool()>& cancelled) const;

  /// Batched EncodeValue: encodes N (path, time) items through ONE
  /// padded forward pass (one gate GEMM per LSTM step for the whole
  /// batch) and returns one TPR per item, in order. Under the scalar
  /// kernel each returned embedding is bitwise identical to the
  /// corresponding single EncodeValue (see nn/padded_batch.h); the
  /// batched serve pipeline and batch_test rely on this.
  std::vector<std::vector<float>> EncodeValueBatch(
      const std::vector<PathTimeItem>& items) const;

  /// Cancellable batched variant; `cancelled` (may be empty) is polled
  /// between pipeline stages, like EncodeValueCancellable.
  std::optional<std::vector<std::vector<float>>> EncodeValueBatchCancellable(
      const std::vector<PathTimeItem>& items,
      const std::function<bool()>& cancelled) const;

  std::vector<nn::Var> Parameters() const override;

  const EncoderConfig& config() const { return config_; }
  int representation_dim() const { return config_.d_hidden; }

  /// The frozen feature space this encoder reads from. tpr::quant shares
  /// it with the quantized twin so both see identical inputs.
  const std::shared_ptr<const FeatureSpace>& features() const {
    return features_;
  }

  /// Input dimensionality fed to the LSTM (spatial [+ temporal]).
  int input_dim() const;

 private:
  /// Shared pipeline behind Encode / EncodeValueCancellable. `cancelled`
  /// may be null; when non-null it is polled between stages and a true
  /// observation aborts the pass with nullopt.
  std::optional<EncodedPath> EncodeImpl(
      const graph::Path& path, int64_t depart_time_s,
      const std::function<bool()>* cancelled) const;

  /// The frozen spatio-temporal input sequence for a path (T x input_dim
  /// minus the trainable categorical part, see Encode()).
  nn::Var BuildStaticFeatures(const graph::Path& path,
                              int64_t depart_time_s) const;

  /// Batched pipeline behind EncodeValueBatch*: assembles one padded
  /// time-major feature batch, runs the batched sequence model, and
  /// applies the masked aggregation. Returns the (batch x d_hidden) TPR
  /// matrix, or nullopt on cancellation.
  std::optional<nn::Var> EncodeBatchImpl(
      const std::vector<PathTimeItem>& items,
      const std::function<bool()>* cancelled) const;

  std::shared_ptr<const FeatureSpace> features_;
  EncoderConfig config_;
  std::unique_ptr<nn::Embedding> road_type_emb_;
  std::unique_ptr<nn::Embedding> lanes_emb_;
  std::unique_ptr<nn::Embedding> oneway_emb_;
  std::unique_ptr<nn::Embedding> signal_emb_;
  std::unique_ptr<nn::Lstm> lstm_;
  std::unique_ptr<nn::TransformerEncoder> transformer_;
  std::unique_ptr<nn::Linear> proj1_;
  std::unique_ptr<nn::Linear> proj2_;
};

}  // namespace tpr::core

#endif  // TPR_CORE_ENCODER_H_
