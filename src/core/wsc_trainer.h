#ifndef TPR_CORE_WSC_TRAINER_H_
#define TPR_CORE_WSC_TRAINER_H_

#include <memory>
#include <vector>

#include "ckpt/serialize.h"
#include "core/encoder.h"
#include "core/wsc_loss.h"
#include "nn/grad_accumulator.h"
#include "nn/optimizer.h"
#include "synth/weak_labels.h"

namespace tpr::core {

/// Configuration of the basic weakly-supervised contrastive model (WSC).
struct WscConfig {
  EncoderConfig encoder;
  WscLossConfig loss;

  /// Balance between global and local WSC loss (Eq. 12). Paper: 0.8.
  float lambda = 0.8f;

  /// Anchors per minibatch; each anchor gets one generated positive
  /// partner, so the effective batch holds 2x this many temporal paths.
  int anchors_per_batch = 12;

  float lr = 3e-4f;  // paper Section VII-A-6
  float grad_clip = 5.0f;

  synth::WeakLabelScheme weak_labels = synth::WeakLabelScheme::kPeakOffPeak;

  /// Ablation switches (Table VI).
  bool use_global = true;
  bool use_local = true;

  /// Data-parallel shards per minibatch. Each shard is a contiguous
  /// group of anchors (plus their generated positives) whose contrastive
  /// loss and backward pass run as an independent autograd graph; shard
  /// gradients are reduced in shard order before the single Adam step.
  /// The shard structure is a pure function of the batch — never of the
  /// thread count — so training is bitwise identical for any TPR_THREADS
  /// value. Clamped so every shard keeps at least 2 anchors.
  int grad_shards = 4;

  /// Training watchdog. A batch is "bad" when its loss is non-finite or
  /// its pre-clip gradient norm exceeds watchdog_max_grad_norm; bad
  /// batches are skipped (no optimizer step, counted in
  /// wsc.watchdog_skipped) so one poisoned batch cannot NaN every
  /// parameter. After watchdog_max_consecutive_bad consecutive bad
  /// batches the epoch aborts with DataLoss — the signal
  /// WsccalPipeline::Train uses to roll back to the last checkpoint
  /// generation. watchdog_max_consecutive_bad = 0 disables the watchdog.
  float watchdog_max_grad_norm = 1e6f;
  int watchdog_max_consecutive_bad = 8;

  uint64_t seed = 7;
};

/// Samples a departure time whose weak label equals `label` (rejection
/// sampling against the scheme; returns `fallback` after too many tries).
int64_t SampleDepartureWithLabel(synth::WeakLabelScheme scheme, int label,
                                 const synth::TrafficModel& traffic,
                                 int64_t fallback, Rng& rng);

/// The WSC base model: a temporal path encoder trained with the global and
/// local weakly-supervised contrastive losses on the unlabeled pool.
class WscModel {
 public:
  WscModel(std::shared_ptr<const FeatureSpace> features, WscConfig config);

  /// Trains one epoch over the given indices into the unlabeled pool.
  /// Returns the mean batch loss.
  StatusOr<double> TrainEpoch(const std::vector<int>& indices);

  /// Weak label of an unlabeled-pool sample under this model's scheme.
  int WeakLabelOf(const synth::TemporalPathSample& sample) const;

  /// Frozen TPR for any temporal path (inference).
  std::vector<float> Encode(const graph::Path& path,
                            int64_t depart_time_s) const {
    return encoder_->EncodeValue(path, depart_time_s);
  }

  /// Bad-batch streak the watchdog is currently tracking (diagnostics).
  int consecutive_bad_batches() const { return consecutive_bad_; }

  const TemporalPathEncoder& encoder() const { return *encoder_; }
  TemporalPathEncoder* mutable_encoder() { return encoder_.get(); }
  const WscConfig& config() const { return config_; }
  const FeatureSpace& features() const { return *features_; }

  /// Serializes the complete trainer state — encoder parameters, Adam
  /// moments, the minibatch counter that seeds per-shard RNG streams,
  /// and the epoch-shuffle RNG — so a restored model continues training
  /// bit-exactly where the original stopped.
  Status SaveState(ckpt::Writer& w) const;

  /// Restores state written by SaveState into this model. The model
  /// must have been built with an architecture-identical config
  /// (parameter count and shapes are verified). Worker replicas are
  /// invalidated so the next minibatch re-syncs from the restored
  /// parameters.
  Status LoadState(ckpt::Reader& r);

 private:
  /// Per-worker encoder replica used to build an independent autograd
  /// graph per thread. Values are lazily re-synced from the master
  /// parameters once per minibatch (they change at every Adam step).
  struct Replica {
    std::unique_ptr<TemporalPathEncoder> encoder;
    std::vector<nn::Var> params;
    uint64_t synced_step = 0;  // 0 = never synced
  };

  std::shared_ptr<const FeatureSpace> features_;
  WscConfig config_;
  std::unique_ptr<TemporalPathEncoder> encoder_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::unique_ptr<nn::GradAccumulator> accumulator_;
  std::vector<Replica> replicas_;
  uint64_t step_ = 0;  // minibatch counter, seeds per-shard RNG streams
  int consecutive_bad_ = 0;  // watchdog streak; transient, not checkpointed
  Rng rng_;
};

}  // namespace tpr::core

#endif  // TPR_CORE_WSC_TRAINER_H_
