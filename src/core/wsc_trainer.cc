#include "core/wsc_trainer.h"

#include <algorithm>

#include "synth/dataset.h"
#include "util/logging.h"

namespace tpr::core {

int64_t SampleDepartureWithLabel(synth::WeakLabelScheme scheme, int label,
                                 const synth::TrafficModel& traffic,
                                 int64_t fallback, Rng& rng) {
  synth::DatasetConfig demand;  // default demand mixture
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int64_t t = synth::SampleDepartureTime(demand, rng);
    if (synth::WeakLabelFor(scheme, traffic, t) == label) return t;
  }
  return fallback;
}

WscModel::WscModel(std::shared_ptr<const FeatureSpace> features,
                   WscConfig config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  TPR_CHECK(features_ != nullptr);
  encoder_ = std::make_unique<TemporalPathEncoder>(features_, config_.encoder);
  optimizer_ = std::make_unique<nn::Adam>(encoder_->Parameters(), config_.lr);
}

int WscModel::WeakLabelOf(const synth::TemporalPathSample& sample) const {
  return synth::WeakLabelFor(config_.weak_labels, *features_->data->traffic,
                             sample.depart_time_s);
}

StatusOr<double> WscModel::TrainEpoch(const std::vector<int>& indices) {
  if (indices.empty()) return Status::InvalidArgument("no training samples");
  if (!config_.use_global && !config_.use_local) {
    return Status::InvalidArgument("both losses disabled");
  }
  const auto& pool = features_->data->unlabeled;
  const auto& traffic = *features_->data->traffic;

  std::vector<int> order = indices;
  rng_.Shuffle(order);

  double total_loss = 0.0;
  int batches = 0;
  const int anchors = std::max(2, config_.anchors_per_batch);

  for (size_t start = 0; start < order.size(); start += anchors) {
    const size_t end = std::min(order.size(), start + anchors);
    if (end - start < 2) break;  // a lone anchor has no negatives

    // Build the minibatch: each anchor plus one generated positive
    // (same path, fresh departure time with the same weak label).
    std::vector<BatchItem> batch;
    batch.reserve(2 * (end - start));
    for (size_t s = start; s < end; ++s) {
      const auto& sample = pool[order[s]];
      BatchItem anchor;
      anchor.path = &sample.path;
      anchor.depart_time_s = sample.depart_time_s;
      anchor.weak_label = synth::WeakLabelFor(config_.weak_labels, traffic,
                                              sample.depart_time_s);
      BatchItem positive = anchor;
      positive.depart_time_s = SampleDepartureWithLabel(
          config_.weak_labels, anchor.weak_label, traffic,
          sample.depart_time_s, rng_);
      batch.push_back(anchor);
      batch.push_back(positive);
    }

    // Forward pass.
    for (auto& item : batch) {
      item.encoded = encoder_->Encode(*item.path, item.depart_time_s);
    }

    // Joint objective (Eq. 12), as a minimisation.
    std::vector<nn::Var> parts;
    if (config_.use_global) {
      nn::Var g = GlobalWscLoss(batch, config_.loss);
      if (g.defined()) parts.push_back(nn::Scale(g, config_.lambda));
    }
    if (config_.use_local) {
      nn::Var l = LocalWscLoss(batch, config_.loss, rng_);
      if (l.defined()) parts.push_back(nn::Scale(l, 1.0f - config_.lambda));
    }
    if (parts.empty()) continue;
    nn::Var loss = parts.size() == 1
                       ? parts[0]
                       : nn::Sum(nn::ConcatCols(parts));

    optimizer_->ZeroGrad();
    loss.Backward();
    optimizer_->ClipGradNorm(config_.grad_clip);
    optimizer_->Step();

    total_loss += loss.scalar();
    ++batches;
  }
  if (batches == 0) return Status::Internal("no batches were formed");
  return total_loss / batches;
}

}  // namespace tpr::core
