#include "core/wsc_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "synth/dataset.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace tpr::core {
namespace {

constexpr char kModelTag[] = "wsc-model";
constexpr uint32_t kModelVersion = 1;

}  // namespace

Status WscModel::SaveState(ckpt::Writer& w) const {
  w.Str(kModelTag);
  w.U32(kModelVersion);
  w.U64(step_);
  ckpt::WriteRng(w, rng_);
  ckpt::WriteParamValues(w, encoder_->Parameters());
  ckpt::WriteAdamState(w, *optimizer_);
  return Status::OK();
}

Status WscModel::LoadState(ckpt::Reader& r) {
  std::string tag;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kModelTag) {
    return Status::FailedPrecondition("not a WSC model checkpoint: " + tag);
  }
  uint32_t version = 0;
  TPR_RETURN_IF_ERROR(r.U32(&version));
  if (version != kModelVersion) {
    return Status::FailedPrecondition(
        "unsupported WSC model checkpoint version " +
        std::to_string(version));
  }
  TPR_RETURN_IF_ERROR(r.U64(&step_));
  TPR_RETURN_IF_ERROR(ckpt::ReadRng(r, &rng_));
  TPR_RETURN_IF_ERROR(ckpt::ReadParamValuesInto(r, encoder_->Parameters()));
  TPR_RETURN_IF_ERROR(ckpt::ReadAdamStateInto(r, optimizer_.get()));
  // Drop worker replicas: one could carry a synced_step equal to the
  // restored step_ and would then silently keep its stale values.
  replicas_.clear();
  return Status::OK();
}

int64_t SampleDepartureWithLabel(synth::WeakLabelScheme scheme, int label,
                                 const synth::TrafficModel& traffic,
                                 int64_t fallback, Rng& rng) {
  // The default demand mixture is immutable; constructing it once saves
  // an allocation per rejection-sampling call on the training hot path.
  static const synth::DatasetConfig demand;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int64_t t = synth::SampleDepartureTime(demand, rng);
    if (synth::WeakLabelFor(scheme, traffic, t) == label) return t;
  }
  return fallback;
}

WscModel::WscModel(std::shared_ptr<const FeatureSpace> features,
                   WscConfig config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  TPR_CHECK(features_ != nullptr);
  encoder_ = std::make_unique<TemporalPathEncoder>(features_, config_.encoder);
  optimizer_ = std::make_unique<nn::Adam>(encoder_->Parameters(), config_.lr);
  accumulator_ =
      std::make_unique<nn::GradAccumulator>(encoder_->Parameters());
}

int WscModel::WeakLabelOf(const synth::TemporalPathSample& sample) const {
  return synth::WeakLabelFor(config_.weak_labels, *features_->data->traffic,
                             sample.depart_time_s);
}

StatusOr<double> WscModel::TrainEpoch(const std::vector<int>& indices) {
  if (indices.empty()) return Status::InvalidArgument("no training samples");
  if (!config_.use_global && !config_.use_local) {
    return Status::InvalidArgument("both losses disabled");
  }
  obs::ScopedSpan epoch_span("wsc.train_epoch", "samples",
                             static_cast<double>(indices.size()));
  Stopwatch epoch_sw;
  const auto& pool = features_->data->unlabeled;
  const auto& traffic = *features_->data->traffic;

  std::vector<int> order = indices;
  rng_.Shuffle(order);

  par::ThreadPool& tp = par::DefaultPool();
  if (replicas_.size() < static_cast<size_t>(tp.num_threads())) {
    replicas_.resize(tp.num_threads());
  }

  double total_loss = 0.0;
  int batches = 0;
  const int anchors = std::max(2, config_.anchors_per_batch);

  for (size_t start = 0; start < order.size(); start += anchors) {
    const size_t end = std::min(order.size(), start + anchors);
    const int batch_anchors = static_cast<int>(end - start);
    if (batch_anchors < 2) break;  // a lone anchor has no negatives

    // Shard structure: contiguous anchor ranges of near-equal size,
    // at least 2 anchors each so every shard can form positives AND
    // negatives. Depends only on the batch, never on the thread count.
    const int num_shards =
        std::clamp(config_.grad_shards, 1, batch_anchors / 2);
    ++step_;
    accumulator_->BeginBatch(num_shards);
    std::vector<double> shard_losses(num_shards,
                                     std::numeric_limits<double>::quiet_NaN());

    tp.ParallelFor(num_shards, [&](int s) {
      obs::ScopedSpan shard_span("wsc.shard", "shard", s);
      Replica& replica = replicas_[par::WorkerIndex()];
      if (replica.encoder == nullptr) {
        replica.encoder =
            std::make_unique<TemporalPathEncoder>(features_, config_.encoder);
        replica.params = replica.encoder->Parameters();
      }
      if (replica.synced_step != step_) {
        nn::CopyParamValues(accumulator_->params(), replica.params);
        replica.synced_step = step_;
      }
      // Independent deterministic RNG stream per (batch, shard).
      Rng shard_rng(MixSeed(MixSeed(config_.seed, step_),
                            static_cast<uint64_t>(s)));

      // Build the shard: each anchor plus one generated positive (same
      // path, fresh departure time with the same weak label).
      const size_t lo = start + static_cast<size_t>(batch_anchors) * s /
                                    num_shards;
      const size_t hi = start + static_cast<size_t>(batch_anchors) *
                                    (s + 1) / num_shards;
      std::vector<BatchItem> batch;
      batch.reserve(2 * (hi - lo));
      for (size_t i = lo; i < hi; ++i) {
        const auto& sample = pool[order[i]];
        BatchItem anchor;
        anchor.path = &sample.path;
        anchor.depart_time_s = sample.depart_time_s;
        anchor.weak_label = synth::WeakLabelFor(config_.weak_labels, traffic,
                                                sample.depart_time_s);
        BatchItem positive = anchor;
        positive.depart_time_s = SampleDepartureWithLabel(
            config_.weak_labels, anchor.weak_label, traffic,
            sample.depart_time_s, shard_rng);
        batch.push_back(anchor);
        batch.push_back(positive);
      }

      // Forward pass on this worker's replica graph.
      for (auto& item : batch) {
        item.encoded =
            replica.encoder->Encode(*item.path, item.depart_time_s);
      }

      // Joint objective (Eq. 12), as a minimisation.
      std::vector<nn::Var> parts;
      if (config_.use_global) {
        nn::Var g = GlobalWscLoss(batch, config_.loss);
        if (g.defined()) parts.push_back(nn::Scale(g, config_.lambda));
      }
      if (config_.use_local) {
        nn::Var l = LocalWscLoss(batch, config_.loss, shard_rng);
        if (l.defined()) parts.push_back(nn::Scale(l, 1.0f - config_.lambda));
      }
      if (parts.empty()) return;
      nn::Var loss =
          parts.size() == 1 ? parts[0] : nn::Sum(nn::ConcatCols(parts));

      loss.Backward();
      accumulator_->CaptureShard(s, replica.params);
      shard_losses[s] = loss.scalar();
    });

    const int defined = accumulator_->captured();
    if (defined == 0) continue;

    double batch_loss = 0.0;
    bool finite_loss = true;
    for (double l : shard_losses) {
      if (std::isnan(l)) continue;  // NaN marks an undefined shard
      if (!std::isfinite(l)) finite_loss = false;
      batch_loss += l;
    }
    if (!std::isfinite(batch_loss)) finite_loss = false;

    // Deterministic reduction (fixed shard order), then one Adam step on
    // the shared parameters.
    optimizer_->ZeroGrad();
    accumulator_->Reduce(1.0f / static_cast<float>(defined));
    const float grad_norm = optimizer_->ClipGradNorm(config_.grad_clip);

    // Watchdog: a non-finite loss, an exploding pre-clip gradient norm,
    // or an injected nan-loss fault (drills) marks the batch bad. Bad
    // batches are skipped — the already-reduced gradients are discarded
    // by the next ZeroGrad — and a long enough streak aborts the epoch
    // so the pipeline can roll back to the last checkpoint.
    if (config_.watchdog_max_consecutive_bad > 0) {
      const bool bad = !finite_loss || !std::isfinite(grad_norm) ||
                       grad_norm > config_.watchdog_max_grad_norm ||
                       fault::ShouldFail(fault::kNanLoss, step_);
      if (bad) {
        ++consecutive_bad_;
        obs::GetCounter("wsc.watchdog_skipped").Add(1);
        TPR_LOG(Warning) << "watchdog: skipping bad batch at step " << step_
                         << " (loss=" << batch_loss
                         << ", grad_norm=" << grad_norm << ", streak "
                         << consecutive_bad_ << "/"
                         << config_.watchdog_max_consecutive_bad << ")";
        if (consecutive_bad_ >= config_.watchdog_max_consecutive_bad) {
          consecutive_bad_ = 0;
          return Status::DataLoss(
              "watchdog: " +
              std::to_string(config_.watchdog_max_consecutive_bad) +
              " consecutive bad batches (last step " +
              std::to_string(step_) + ")");
        }
        continue;
      }
      consecutive_bad_ = 0;
    }
    optimizer_->Step();

    total_loss += batch_loss / defined;
    ++batches;
  }
  if (batches == 0) return Status::Internal("no batches were formed");
  const double mean_loss = total_loss / batches;
  if (obs::MetricsEnabled()) {
    obs::GetCounter("wsc.batches").Add(batches);
    obs::GetHistogram("wsc.epoch_seconds").Observe(epoch_sw.ElapsedSeconds());
    obs::GetGauge("wsc.last_epoch_loss").Set(mean_loss);
  }
  return mean_loss;
}

}  // namespace tpr::core
