#include "core/probe.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace tpr::core {
namespace {

/// Solves A x = b in place for a symmetric positive-definite A (n x n,
/// row-major) via Cholesky. Returns false when A is not SPD (a pivot
/// underflows), which with the ridge term only happens on non-finite
/// input.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (!(sum > 0.0) || !std::isfinite(sum)) return false;
        a[i * n + i] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward substitution L y = b, then back substitution L^T x = y.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  for (size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= a[k * n + ii] * b[k];
    b[ii] = sum / a[ii * n + ii];
  }
  return true;
}

}  // namespace

ProbeSet BuildProbeSet(const synth::CityDataset& data, size_t n,
                       uint64_t seed) {
  ProbeSet probe;
  const auto& pool = data.labeled;
  if (pool.empty() || n == 0) return probe;
  // Deterministic sample without replacement: shuffle indices with a
  // seeded Rng, take the first n.
  std::vector<size_t> idx(pool.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(MixSeed(seed, 0x9011DE9085EULL));
  for (size_t i = idx.size(); i-- > 1;) {
    const size_t j = rng.UniformInt(i + 1);
    std::swap(idx[i], idx[j]);
  }
  const size_t take = std::min(n, idx.size());
  probe.queries.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const auto& s = pool[idx[i]];
    probe.queries.push_back({s.path, s.depart_time_s, s.travel_time_s});
  }
  return probe;
}

bool AllParametersFinite(const TemporalPathEncoder& encoder) {
  for (const nn::Var& p : encoder.Parameters()) {
    if (!p.defined()) continue;
    const nn::Tensor& t = p.value();
    const float* data = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
      if (!std::isfinite(data[i])) return false;
    }
  }
  return true;
}

StatusOr<double> ProbeTravelTimeMae(const TemporalPathEncoder& encoder,
                                    const ProbeSet& probe) {
  return ProbeTravelTimeMaeWith(
      [&encoder](const graph::Path& path, int64_t depart_time_s) {
        return encoder.EncodeValue(path, depart_time_s);
      },
      encoder.representation_dim(), probe);
}

StatusOr<double> ProbeTravelTimeMaeWith(
    const std::function<std::vector<float>(const graph::Path&, int64_t)>&
        embed,
    int representation_dim, const ProbeSet& probe) {
  const size_t n = probe.queries.size();
  if (n == 0) return Status::InvalidArgument("empty probe set");
  const size_t d = static_cast<size_t>(representation_dim) + 1;

  // Embed every probe query once (bias feature appended).
  std::vector<double> x(n * d, 1.0);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const ProbeQuery& q = probe.queries[i];
    const std::vector<float> e = embed(q.path, q.depart_time_s);
    for (size_t j = 0; j + 1 < d; ++j) x[i * d + j] = e[j];
    y[i] = q.travel_time_s;
  }

  // Normal equations: (X^T X + lambda I) w = X^T y.
  std::vector<double> xtx(d * d, 0.0);
  std::vector<double> xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double xij = x[i * d + j];
      xty[j] += xij * y[i];
      for (size_t k = 0; k <= j; ++k) xtx[j * d + k] += xij * x[i * d + k];
    }
  }
  for (size_t j = 0; j < d; ++j) {
    for (size_t k = j + 1; k < d; ++k) xtx[j * d + k] = xtx[k * d + j];
    xtx[j * d + j] += probe.ridge_lambda;
  }
  if (!CholeskySolve(xtx, xty, d)) {
    return Status::Internal("probe ridge solve failed (non-finite inputs)");
  }

  double abs_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pred = 0.0;
    for (size_t j = 0; j < d; ++j) pred += x[i * d + j] * xty[j];
    abs_err += std::fabs(pred - y[i]);
  }
  const double mae = abs_err / static_cast<double>(n);
  if (!std::isfinite(mae)) {
    return Status::Internal("probe MAE is not finite");
  }
  return mae;
}

}  // namespace tpr::core
