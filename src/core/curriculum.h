#ifndef TPR_CORE_CURRICULUM_H_
#define TPR_CORE_CURRICULUM_H_

#include <memory>
#include <vector>

#include "core/wsc_trainer.h"

namespace tpr::core {

/// How training data is ordered before the staged schedule.
enum class CurriculumStrategy {
  kLearned,    // full pipeline of Section VI (expert difficulty scores)
  kHeuristic,  // sort by number of edges (Table V baseline)
  kNone,       // random shuffle, single stage (the "w/o CL" ablation)
};

/// Configuration of the contrastive curriculum (Section VI). The paper
/// fixes N = M (number of meta-sets == number of stages).
struct CurriculumConfig {
  CurriculumStrategy strategy = CurriculumStrategy::kLearned;
  int num_meta_sets = 4;  // N == M; paper default is 10
  int expert_epochs = 2;  // training epochs for each expert WSC model
};

/// Difficulty-scored sample: higher score = easier (Eq. 13 sums
/// cross-expert representation similarities).
struct ScoredSample {
  int index = -1;     // into the unlabeled pool
  double score = 0.0;
};

/// Splits indices into N contiguous meta-sets after sorting by path
/// length in meters (Section VI-B: length-based split, not random).
std::vector<std::vector<int>> SplitMetaSets(
    const synth::CityDataset& data, const std::vector<int>& indices, int n);

/// Curriculum sample evaluation (Section VI-B): trains one expert WSC per
/// meta-set and scores every sample by the summed cosine similarity
/// between its own expert's TPR and every other expert's TPR (Eq. 13).
StatusOr<std::vector<ScoredSample>> EvaluateDifficulty(
    std::shared_ptr<const FeatureSpace> features, const WscConfig& wsc_config,
    const CurriculumConfig& config, const std::vector<int>& indices);

/// Curriculum sample selection (Section VI-C): orders samples easy to
/// hard and distributes them over M = num_meta_sets stages. The caller
/// trains one epoch per stage and then a final stage on everything.
std::vector<std::vector<int>> BuildStages(std::vector<ScoredSample> scored,
                                          int num_stages, Rng& rng);

/// Full stage construction for any strategy: kLearned runs the expert
/// pipeline; kHeuristic sorts by edge count; kNone returns one shuffled
/// stage. Stages do not include the final full-data stage.
StatusOr<std::vector<std::vector<int>>> BuildCurriculum(
    std::shared_ptr<const FeatureSpace> features, const WscConfig& wsc_config,
    const CurriculumConfig& config, const std::vector<int>& indices);

}  // namespace tpr::core

#endif  // TPR_CORE_CURRICULUM_H_
