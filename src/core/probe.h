#ifndef TPR_CORE_PROBE_H_
#define TPR_CORE_PROBE_H_

// Golden probe sets: a small, fixed collection of (path, depart_time,
// travel_time) queries used to compare encoder generations *offline*,
// before a candidate ever takes traffic. The quality signal is the MAE
// of a closed-form ridge-regression read-out from the candidate's
// embeddings to the weak travel-time labels — deliberately cheap (no
// gradient steps, no GBDT) and a pure function of the encoder
// parameters and the probe set, so two evaluations of the same model
// agree bitwise. tpr::rollout gates promotion on this: a candidate
// whose probe error regresses past the budget relative to the incumbent
// is quarantined without serving a single request.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/encoder.h"
#include "synth/dataset.h"
#include "util/status.h"

namespace tpr::core {

/// One probe query: a temporal path plus its weak travel-time label.
struct ProbeQuery {
  graph::Path path;
  int64_t depart_time_s = 0;
  double travel_time_s = 0.0;
};

/// A fixed golden probe set. Build once (deterministically) and reuse
/// for every candidate so generations are compared on identical inputs.
struct ProbeSet {
  std::vector<ProbeQuery> queries;
  /// Ridge regularizer for the travel-time read-out. Keeps the normal
  /// equations well-conditioned even when n < representation_dim.
  double ridge_lambda = 1e-2;
};

/// Deterministically samples `n` queries from the labeled pool of
/// `data` (fewer when the pool is smaller). The same (data, n, seed)
/// always yields the same probe set.
ProbeSet BuildProbeSet(const synth::CityDataset& data, size_t n,
                       uint64_t seed);

/// True iff every parameter value of the encoder is finite. The cheapest
/// sanity gate: a NaN/Inf anywhere poisons every embedding.
bool AllParametersFinite(const TemporalPathEncoder& encoder);

/// Travel-time MAE of a ridge-regression read-out over the encoder's
/// embeddings of the probe queries: fit w on (embedding + bias) -> label
/// in closed form (normal equations + Cholesky), report mean |error| on
/// the probe set itself. Deterministic; InvalidArgument on an empty
/// probe set, Internal if the solve fails (non-finite embeddings).
StatusOr<double> ProbeTravelTimeMae(const TemporalPathEncoder& encoder,
                                    const ProbeSet& probe);

/// Same read-out as ProbeTravelTimeMae over an arbitrary embedding
/// function — used to score the int8-quantized twin of a candidate on
/// the identical probe set, making fp32 and quantized MAE directly
/// comparable. `embed` must return `representation_dim` floats for every
/// probe query.
StatusOr<double> ProbeTravelTimeMaeWith(
    const std::function<std::vector<float>(const graph::Path&, int64_t)>&
        embed,
    int representation_dim, const ProbeSet& probe);

}  // namespace tpr::core

#endif  // TPR_CORE_PROBE_H_
