#include "core/encoder.h"

#include <algorithm>

#include "graph/road_network.h"
#include "util/logging.h"

namespace tpr::core {

TemporalPathEncoder::TemporalPathEncoder(
    std::shared_ptr<const FeatureSpace> features, const EncoderConfig& config)
    : features_(std::move(features)), config_(config) {
  TPR_CHECK(features_ != nullptr);
  Rng rng(config.seed);
  road_type_emb_ =
      std::make_unique<nn::Embedding>(graph::kNumRoadTypes, config.d_rt, rng);
  lanes_emb_ =
      std::make_unique<nn::Embedding>(graph::kMaxLanes, config.d_lanes, rng);
  oneway_emb_ = std::make_unique<nn::Embedding>(2, config.d_oneway, rng);
  signal_emb_ = std::make_unique<nn::Embedding>(2, config.d_signal, rng);
  if (config.sequence_model == SequenceModel::kLstm) {
    lstm_ = std::make_unique<nn::Lstm>(input_dim(), config.d_hidden,
                                       config.lstm_layers, rng);
  } else {
    transformer_ = std::make_unique<nn::TransformerEncoder>(
        input_dim(), config.d_hidden, config.lstm_layers, rng);
  }
  if (config.use_projection_head) {
    proj1_ = std::make_unique<nn::Linear>(config.d_hidden,
                                          config.d_hidden, rng);
    proj2_ = std::make_unique<nn::Linear>(config.d_hidden,
                                          config.projection_dim, rng);
  }
}

int TemporalPathEncoder::input_dim() const {
  const int d_topo = 2 * features_->config.road_embedding_dim;
  int dim = config_.d_rt + config_.d_lanes + config_.d_oneway +
            config_.d_signal + d_topo;
  if (config_.use_temporal) dim += features_->config.temporal_embedding_dim;
  return dim;
}

nn::Var TemporalPathEncoder::BuildStaticFeatures(const graph::Path& path,
                                                 int64_t depart_time_s) const {
  const auto& network = *features_->data->network;
  const int d_road = features_->config.road_embedding_dim;
  const int d_topo = 2 * d_road;
  const int d_tem =
      config_.use_temporal ? features_->config.temporal_embedding_dim : 0;
  const int T = static_cast<int>(path.size());

  nn::Tensor static_features(T, d_topo + d_tem);
  const int t_node = features_->TemporalNodeFor(depart_time_s);
  const auto& t_vec = features_->temporal_embeddings[t_node];
  for (int i = 0; i < T; ++i) {
    const auto& e = network.edge(path[i]);
    const auto& from_vec = features_->road_embeddings[e.from];
    const auto& to_vec = features_->road_embeddings[e.to];
    float* row = static_features.data() +
                 static_cast<size_t>(i) * (d_topo + d_tem);
    std::copy(from_vec.begin(), from_vec.end(), row);
    std::copy(to_vec.begin(), to_vec.end(), row + d_road);
    if (config_.use_temporal) {
      std::copy(t_vec.begin(), t_vec.end(), row + d_topo);
    }
  }
  return nn::Var::Leaf(std::move(static_features), /*requires_grad=*/false);
}

EncodedPath TemporalPathEncoder::Encode(const graph::Path& path,
                                        int64_t depart_time_s) const {
  auto out = EncodeImpl(path, depart_time_s, /*cancelled=*/nullptr);
  TPR_CHECK(out.has_value());  // never cancelled without a callback
  return *std::move(out);
}

std::optional<EncodedPath> TemporalPathEncoder::EncodeImpl(
    const graph::Path& path, int64_t depart_time_s,
    const std::function<bool()>* cancelled) const {
  TPR_CHECK(!path.empty());
  const auto& network = *features_->data->network;
  const int T = static_cast<int>(path.size());
  const auto is_cancelled = [cancelled] {
    return cancelled != nullptr && *cancelled && (*cancelled)();
  };

  if (is_cancelled()) return std::nullopt;
  std::vector<int> rt_ids(T), lane_ids(T), ow_ids(T), ts_ids(T);
  for (int i = 0; i < T; ++i) {
    const auto& e = network.edge(path[i]);
    rt_ids[i] = static_cast<int>(e.road_type);
    lane_ids[i] = e.num_lanes - 1;
    ow_ids[i] = e.one_way ? 1 : 0;
    ts_ids[i] = e.has_signal ? 1 : 0;
  }

  // s_type = [M_RT s_RT, M_NoL s_NoL, M_OW s_OW, M_TS s_TS]      (Eq. 3-4)
  // s_all  = [s_rn, s_type], x = [t_all, s_all]                  (Eq. 5-6)
  nn::Var x = nn::ConcatCols({road_type_emb_->Forward(rt_ids),
                              lanes_emb_->Forward(lane_ids),
                              oneway_emb_->Forward(ow_ids),
                              signal_emb_->Forward(ts_ids),
                              BuildStaticFeatures(path, depart_time_s)});

  if (is_cancelled()) return std::nullopt;
  EncodedPath out;
  out.edge_reps = lstm_ != nullptr ? lstm_->Forward(x)
                                   : transformer_->Forward(x);  // Eq. 7
  if (is_cancelled()) return std::nullopt;
  switch (config_.aggregation) {            // Eq. 8 (mean by default)
    case Aggregation::kMean:
      out.tpr = nn::RowMean(out.edge_reps);
      break;
    case Aggregation::kMax:
      out.tpr = nn::RowMax(out.edge_reps);
      break;
    case Aggregation::kLast:
      out.tpr = nn::SliceRow(out.edge_reps, out.edge_reps.rows() - 1);
      break;
  }
  if (proj1_ != nullptr) {
    auto project = [this](const nn::Var& v) {
      return proj2_->Forward(nn::Relu(proj1_->Forward(v)));
    };
    out.tpr_proj = project(out.tpr);
    out.edge_reps_proj = project(out.edge_reps);
  } else {
    out.tpr_proj = out.tpr;
    out.edge_reps_proj = out.edge_reps;
  }
  return out;
}

std::optional<nn::Var> TemporalPathEncoder::EncodeBatchImpl(
    const std::vector<PathTimeItem>& items,
    const std::function<bool()>* cancelled) const {
  TPR_CHECK(!items.empty());
  const auto& network = *features_->data->network;
  const int B = static_cast<int>(items.size());
  const auto is_cancelled = [cancelled] {
    return cancelled != nullptr && *cancelled && (*cancelled)();
  };

  if (is_cancelled()) return std::nullopt;
  std::vector<int> lengths(items.size());
  int max_len = 0;
  for (int b = 0; b < B; ++b) {
    TPR_CHECK(items[b].path != nullptr && !items[b].path->empty());
    lengths[b] = static_cast<int>(items[b].path->size());
    max_len = std::max(max_len, lengths[b]);
  }
  const int rows = max_len * B;

  // Time-major categorical ids: row t*B + b describes edge t of path b.
  // Padding rows use id 0 (a valid table row); their lookups are
  // discarded by the masked aggregation, never read.
  std::vector<int> rt_ids(rows, 0), lane_ids(rows, 0), ow_ids(rows, 0),
      ts_ids(rows, 0);
  const int d_road = features_->config.road_embedding_dim;
  const int d_topo = 2 * d_road;
  const int d_tem =
      config_.use_temporal ? features_->config.temporal_embedding_dim : 0;
  // Zero-initialised so padding rows carry zeros.
  nn::Tensor static_features(rows, d_topo + d_tem);
  for (int b = 0; b < B; ++b) {
    const graph::Path& path = *items[b].path;
    const int t_node = features_->TemporalNodeFor(items[b].depart_time_s);
    const auto& t_vec = features_->temporal_embeddings[t_node];
    for (int t = 0; t < lengths[b]; ++t) {
      const int r = t * B + b;
      const auto& e = network.edge(path[t]);
      rt_ids[r] = static_cast<int>(e.road_type);
      lane_ids[r] = e.num_lanes - 1;
      ow_ids[r] = e.one_way ? 1 : 0;
      ts_ids[r] = e.has_signal ? 1 : 0;
      const auto& from_vec = features_->road_embeddings[e.from];
      const auto& to_vec = features_->road_embeddings[e.to];
      float* row = static_features.data() +
                   static_cast<size_t>(r) * (d_topo + d_tem);
      std::copy(from_vec.begin(), from_vec.end(), row);
      std::copy(to_vec.begin(), to_vec.end(), row + d_road);
      if (config_.use_temporal) {
        std::copy(t_vec.begin(), t_vec.end(), row + d_topo);
      }
    }
  }

  nn::PaddedBatch pb;
  pb.data = nn::ConcatCols(
      {road_type_emb_->Forward(rt_ids), lanes_emb_->Forward(lane_ids),
       oneway_emb_->Forward(ow_ids), signal_emb_->Forward(ts_ids),
       nn::Var::Leaf(std::move(static_features))});
  pb.lengths = std::move(lengths);
  pb.batch = B;
  pb.max_len = max_len;

  if (is_cancelled()) return std::nullopt;
  const nn::PaddedBatch edge_reps = lstm_ != nullptr
                                        ? lstm_->ForwardBatch(pb)
                                        : transformer_->ForwardBatch(pb);
  if (is_cancelled()) return std::nullopt;
  switch (config_.aggregation) {
    case Aggregation::kMean:
      return nn::SequenceMeanBatch(edge_reps.data, edge_reps.lengths);
    case Aggregation::kMax:
      return nn::SequenceMaxBatch(edge_reps.data, edge_reps.lengths);
    case Aggregation::kLast: {
      std::vector<int> last(edge_reps.batch);
      for (int b = 0; b < edge_reps.batch; ++b) {
        last[b] = (edge_reps.lengths[b] - 1) * B + b;
      }
      return nn::Gather(edge_reps.data, last);
    }
  }
  return std::nullopt;  // unreachable
}

std::vector<std::vector<float>> TemporalPathEncoder::EncodeValueBatch(
    const std::vector<PathTimeItem>& items) const {
  nn::NoGradGuard no_grad;
  auto tprs = EncodeBatchImpl(items, /*cancelled=*/nullptr);
  TPR_CHECK(tprs.has_value());  // never cancelled without a callback
  const nn::Tensor& v = tprs->value();
  std::vector<std::vector<float>> out(items.size());
  for (size_t b = 0; b < items.size(); ++b) {
    const float* row = v.data() + b * v.cols();
    out[b].assign(row, row + v.cols());
  }
  return out;
}

std::optional<std::vector<std::vector<float>>>
TemporalPathEncoder::EncodeValueBatchCancellable(
    const std::vector<PathTimeItem>& items,
    const std::function<bool()>& cancelled) const {
  nn::NoGradGuard no_grad;
  auto tprs = EncodeBatchImpl(items, &cancelled);
  if (!tprs.has_value()) return std::nullopt;
  const nn::Tensor& v = tprs->value();
  std::vector<std::vector<float>> out(items.size());
  for (size_t b = 0; b < items.size(); ++b) {
    const float* row = v.data() + b * v.cols();
    out[b].assign(row, row + v.cols());
  }
  return out;
}

std::vector<float> TemporalPathEncoder::EncodeValue(
    const graph::Path& path, int64_t depart_time_s) const {
  nn::NoGradGuard no_grad;
  const EncodedPath encoded = Encode(path, depart_time_s);
  const nn::Tensor& v = encoded.tpr.value();
  return std::vector<float>(v.data(), v.data() + v.size());
}

std::optional<std::vector<float>> TemporalPathEncoder::EncodeValueCancellable(
    const graph::Path& path, int64_t depart_time_s,
    const std::function<bool()>& cancelled) const {
  nn::NoGradGuard no_grad;
  const auto encoded = EncodeImpl(path, depart_time_s, &cancelled);
  if (!encoded.has_value()) return std::nullopt;
  const nn::Tensor& v = encoded->tpr.value();
  return std::vector<float>(v.data(), v.data() + v.size());
}

std::vector<nn::Var> TemporalPathEncoder::Parameters() const {
  std::vector<nn::Var> params;
  for (const auto* m : std::initializer_list<const nn::Module*>{
           road_type_emb_.get(), lanes_emb_.get(), oneway_emb_.get(),
           signal_emb_.get(), lstm_.get(), transformer_.get()}) {
    if (m == nullptr) continue;
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (const nn::Linear* proj : {proj1_.get(), proj2_.get()}) {
    if (proj != nullptr) {
      auto p = proj->Parameters();
      params.insert(params.end(), p.begin(), p.end());
    }
  }
  return params;
}

}  // namespace tpr::core
