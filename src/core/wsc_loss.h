#ifndef TPR_CORE_WSC_LOSS_H_
#define TPR_CORE_WSC_LOSS_H_

#include <vector>

#include "core/encoder.h"
#include "util/rng.h"

namespace tpr::core {

/// One temporal path inside a training minibatch, with its forward pass.
struct BatchItem {
  const graph::Path* path = nullptr;  // not owned
  int64_t depart_time_s = 0;
  int weak_label = 0;
  EncodedPath encoded;
};

/// True iff two items are positives of each other (same path, same weak
/// label — Section V-A). Items at different batch positions with an equal
/// path count regardless of their exact departure times.
bool IsPositivePair(const BatchItem& a, const BatchItem& b);

/// Settings shared by the two losses.
struct WscLossConfig {
  /// Softmax temperature on cosine similarities. Eq. 10 applies sim()
  /// directly, i.e., temperature 1, which we keep as the default; values
  /// below 1 sharpen the softmax like the tau of Eq. 9.
  float temperature = 1.0f;
  /// Local loss: positive / negative edge samples per query (Section V-C).
  int pos_edges_per_query = 3;
  int neg_edges_per_query = 6;
};

/// Global weakly-supervised contrastive loss (Eq. 10), returned as a
/// scalar to MINIMIZE (the negative of the paper's maximisation
/// objective), averaged over the queries that have at least one positive
/// and one negative. Returns an undefined Var if no query qualifies.
nn::Var GlobalWscLoss(const std::vector<BatchItem>& batch,
                      const WscLossConfig& config);

/// Local weakly-supervised contrastive loss (Eq. 11): pulls each query's
/// TPR toward spatio-temporal representations of edges from positive
/// paths and pushes it from edges of negative paths with different weak
/// labels. Scalar to MINIMIZE; undefined if no query qualifies.
nn::Var LocalWscLoss(const std::vector<BatchItem>& batch,
                     const WscLossConfig& config, Rng& rng);

}  // namespace tpr::core

#endif  // TPR_CORE_WSC_LOSS_H_
