#include "core/wsc_loss.h"

#include <algorithm>

namespace tpr::core {

bool IsPositivePair(const BatchItem& a, const BatchItem& b) {
  return a.weak_label == b.weak_label &&
         (a.path == b.path || *a.path == *b.path);
}

nn::Var GlobalWscLoss(const std::vector<BatchItem>& batch,
                      const WscLossConfig& config) {
  const int n = static_cast<int>(batch.size());
  const float inv_tau = 1.0f / config.temperature;

  // Pairwise scaled cosine similarities (computed lazily below).
  std::vector<nn::Var> sim(static_cast<size_t>(n) * n);
  auto sim_at = [&](int i, int j) -> nn::Var& {
    return sim[static_cast<size_t>(i) * n + j];
  };
  auto get_sim = [&](int i, int j) -> const nn::Var& {
    nn::Var& s = sim_at(std::min(i, j), std::max(i, j));
    if (!s.defined()) {
      s = nn::Scale(
          nn::CosineSim(batch[i].encoded.tpr_proj, batch[j].encoded.tpr_proj),
          inv_tau);
    }
    return s;
  };

  std::vector<nn::Var> query_terms;
  for (int i = 0; i < n; ++i) {
    std::vector<int> positives, negatives;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      (IsPositivePair(batch[i], batch[j]) ? positives : negatives).push_back(j);
    }
    if (positives.empty() || negatives.empty()) continue;

    // log-sum-exp over the negative set N_i (denominator of Eq. 10).
    std::vector<nn::Var> neg_sims;
    neg_sims.reserve(negatives.size());
    for (int k : negatives) neg_sims.push_back(get_sim(i, k));
    nn::Var neg_lse = nn::LogSumExp(nn::ConcatCols(neg_sims));

    // (1/|S_i|) sum_j [ sim(i,j) - LSE_neg ].
    std::vector<nn::Var> pos_terms;
    pos_terms.reserve(positives.size());
    for (int j : positives) {
      pos_terms.push_back(nn::Sub(get_sim(i, j), neg_lse));
    }
    query_terms.push_back(
        nn::Scale(nn::Sum(nn::ConcatCols(pos_terms)),
                  1.0f / static_cast<float>(positives.size())));
  }
  if (query_terms.empty()) return nn::Var();
  // Negative mean: Eq. 10 is maximised, the trainer minimises.
  return nn::Scale(nn::Sum(nn::ConcatCols(query_terms)),
                   -1.0f / static_cast<float>(query_terms.size()));
}

nn::Var LocalWscLoss(const std::vector<BatchItem>& batch,
                     const WscLossConfig& config, Rng& rng) {
  const int n = static_cast<int>(batch.size());
  const float inv_tau = 1.0f / config.temperature;

  std::vector<nn::Var> query_terms;
  for (int i = 0; i < n; ++i) {
    // Positive edge pool: edges of the query's own path and of positive
    // paths (same path + same weak label). Negative pool: edges of paths
    // whose weak label differs (Eq. 11 restricts negatives to y_j != y_i).
    std::vector<std::pair<int, int>> pos_pool, neg_pool;  // (item, row)
    for (int j = 0; j < n; ++j) {
      const int rows = batch[j].encoded.edge_reps_proj.rows();
      const bool positive = (j == i) || IsPositivePair(batch[i], batch[j]);
      if (positive) {
        for (int r = 0; r < rows; ++r) pos_pool.emplace_back(j, r);
      } else if (batch[j].weak_label != batch[i].weak_label) {
        for (int r = 0; r < rows; ++r) neg_pool.emplace_back(j, r);
      }
    }
    if (pos_pool.empty() || neg_pool.empty()) continue;
    rng.Shuffle(pos_pool);
    rng.Shuffle(neg_pool);
    const int num_pos = std::min<int>(config.pos_edges_per_query,
                                      static_cast<int>(pos_pool.size()));
    const int num_neg = std::min<int>(config.neg_edges_per_query,
                                      static_cast<int>(neg_pool.size()));

    auto edge_sim = [&](const std::pair<int, int>& pick) {
      return nn::Scale(
          nn::CosineSim(batch[i].encoded.tpr_proj,
                        nn::SliceRow(batch[pick.first].encoded.edge_reps_proj,
                                     pick.second)),
          inv_tau);
    };

    std::vector<nn::Var> pos_sims, neg_sims;
    pos_sims.reserve(num_pos);
    neg_sims.reserve(num_neg);
    for (int k = 0; k < num_pos; ++k) pos_sims.push_back(edge_sim(pos_pool[k]));
    for (int k = 0; k < num_neg; ++k) neg_sims.push_back(edge_sim(neg_pool[k]));

    // (1/|PN_i|) [ log sum_pos exp - log sum_neg exp ]   (Eq. 11)
    nn::Var term =
        nn::Sub(nn::LogSumExp(nn::ConcatCols(pos_sims)),
                nn::LogSumExp(nn::ConcatCols(neg_sims)));
    query_terms.push_back(
        nn::Scale(term, 1.0f / static_cast<float>(num_pos)));
  }
  if (query_terms.empty()) return nn::Var();
  return nn::Scale(nn::Sum(nn::ConcatCols(query_terms)),
                   -1.0f / static_cast<float>(query_terms.size()));
}

}  // namespace tpr::core
