#ifndef TPR_CORE_WSCCL_H_
#define TPR_CORE_WSCCL_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/curriculum.h"
#include "core/wsc_trainer.h"

namespace tpr::core {

/// Configuration of the full advanced framework (WSC + curriculum).
struct WsccalConfig {
  WscConfig wsc;
  CurriculumConfig curriculum;

  /// Epochs per curriculum stage ST_1..ST_M (paper: 1).
  int stage_epochs = 1;

  /// Epochs of the final full-data stage ST_{M+1} (paper: to convergence).
  int final_epochs = 4;

  /// Crash-safe checkpointing. When `ckpt_dir` is non-empty — or the
  /// TPR_CKPT_DIR environment variable is set — Train() resumes from the
  /// newest valid checkpoint in that directory and writes a new one
  /// every `checkpoint_every_n_epochs` training epochs (stage and
  /// final-stage epochs count equally; 0 writes only the completion
  /// checkpoint). Checkpoints capture the curriculum stages, the
  /// schedule cursor, and the full trainer state, so a resumed run
  /// reproduces the uninterrupted run bit-exactly.
  std::string ckpt_dir;
  int checkpoint_every_n_epochs = 1;

  /// How many times Train() rolls back to the last valid checkpoint
  /// generation after the training watchdog aborts with DataLoss (see
  /// WscConfig::watchdog_max_consecutive_bad), before giving up and
  /// returning the error. Rollback needs a ckpt_dir with at least one
  /// checkpoint. Not part of the config fingerprint: it changes failure
  /// handling, never the trained result.
  int max_watchdog_rollbacks = 2;

  /// Test/ops hook simulating a kill: when > 0, Train() returns cleanly
  /// after this many total epochs, without any extra state flush beyond
  /// the periodic checkpoint schedule. The returned pipeline is
  /// partially trained; calling Train() again with the same ckpt_dir
  /// resumes from the last checkpoint.
  int stop_after_epochs = 0;
};

/// The trained WSCCL model: runs curriculum construction, staged training
/// and the final full-data stage, then exposes the frozen encoder.
class WsccalPipeline {
 public:
  /// Trains end to end on the dataset's unlabeled pool, resuming from
  /// `config.ckpt_dir` when it holds a valid checkpoint. Resuming under
  /// a config whose fingerprint differs from the checkpoint's is a
  /// FailedPrecondition — a checkpoint is never silently reinterpreted.
  static StatusOr<std::unique_ptr<WsccalPipeline>> Train(
      std::shared_ptr<const FeatureSpace> features,
      const WsccalConfig& config);

  /// Serialized trained pipeline (curriculum stages + trainer state),
  /// for the bench model registry. Only complete pipelines serialize;
  /// partial ones (see stop_after_epochs) are refused.
  StatusOr<std::string> Serialize() const;

  /// Reconstructs a trained pipeline from Serialize() output. The
  /// config must fingerprint-match the one the checkpoint was trained
  /// with, and the payload must describe a completed run.
  static StatusOr<std::unique_ptr<WsccalPipeline>> Deserialize(
      std::shared_ptr<const FeatureSpace> features,
      const WsccalConfig& config, std::string_view payload);

  /// Hash of every configuration field that affects the trained result
  /// (architecture, seeds, curriculum schedule — not checkpoint paths).
  /// Stored in checkpoints to refuse cross-config resumes.
  static uint64_t ConfigFingerprint(const WsccalConfig& config);

  /// Frozen TPR for a temporal path.
  std::vector<float> Encode(const graph::Path& path,
                            int64_t depart_time_s) const {
    return model_->Encode(path, depart_time_s);
  }

  std::vector<float> Encode(const synth::TemporalPathSample& sample) const {
    return model_->Encode(sample.path, sample.depart_time_s);
  }

  const WscModel& model() const { return *model_; }
  WscModel* mutable_model() { return model_.get(); }

  /// Mean training loss of the last completed epoch (diagnostics; the
  /// last final-stage epoch for a completed run).
  double final_loss() const { return final_loss_; }

  /// False when training was interrupted by stop_after_epochs before
  /// the schedule finished.
  bool completed() const { return completed_; }

  /// Total training epochs completed so far (stage + final).
  uint64_t epochs_completed() const { return global_epoch_; }

 private:
  WsccalPipeline() = default;

  /// Payload for both periodic checkpoints and registry serialization.
  std::string BuildPayload() const;

  /// Restores cursor, stages, and model state from BuildPayload()
  /// output. config_ and model_ must already be set.
  Status RestorePayload(std::string_view payload);

  WsccalConfig config_;
  std::unique_ptr<WscModel> model_;
  std::vector<std::vector<int>> stages_;
  // Schedule cursor: the NEXT (stage, epoch) to run. next_stage_ ==
  // stages_.size() addresses the final full-data stage.
  int next_stage_ = 0;
  int next_epoch_ = 0;
  uint64_t global_epoch_ = 0;
  bool completed_ = false;
  double final_loss_ = 0.0;
};

}  // namespace tpr::core

#endif  // TPR_CORE_WSCCL_H_
