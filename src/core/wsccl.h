#ifndef TPR_CORE_WSCCL_H_
#define TPR_CORE_WSCCL_H_

#include <memory>

#include "core/curriculum.h"
#include "core/wsc_trainer.h"

namespace tpr::core {

/// Configuration of the full advanced framework (WSC + curriculum).
struct WsccalConfig {
  WscConfig wsc;
  CurriculumConfig curriculum;

  /// Epochs per curriculum stage ST_1..ST_M (paper: 1).
  int stage_epochs = 1;

  /// Epochs of the final full-data stage ST_{M+1} (paper: to convergence).
  int final_epochs = 4;
};

/// The trained WSCCL model: runs curriculum construction, staged training
/// and the final full-data stage, then exposes the frozen encoder.
class WsccalPipeline {
 public:
  /// Trains end to end on the dataset's unlabeled pool.
  static StatusOr<std::unique_ptr<WsccalPipeline>> Train(
      std::shared_ptr<const FeatureSpace> features,
      const WsccalConfig& config);

  /// Frozen TPR for a temporal path.
  std::vector<float> Encode(const graph::Path& path,
                            int64_t depart_time_s) const {
    return model_->Encode(path, depart_time_s);
  }

  std::vector<float> Encode(const synth::TemporalPathSample& sample) const {
    return model_->Encode(sample.path, sample.depart_time_s);
  }

  const WscModel& model() const { return *model_; }
  WscModel* mutable_model() { return model_.get(); }

  /// Mean training loss of the last final-stage epoch (diagnostics).
  double final_loss() const { return final_loss_; }

 private:
  WsccalPipeline() = default;

  std::unique_ptr<WscModel> model_;
  double final_loss_ = 0.0;
};

}  // namespace tpr::core

#endif  // TPR_CORE_WSCCL_H_
