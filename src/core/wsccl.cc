#include "core/wsccl.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <utility>

#include "ckpt/serialize.h"
#include "kern/arena.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace tpr::core {
namespace {

constexpr char kPipelineTag[] = "wsccl-pipeline";
constexpr uint32_t kPipelineVersion = 1;

uint64_t FloatBits(float x) {
  uint32_t b = 0;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

}  // namespace

uint64_t WsccalPipeline::ConfigFingerprint(const WsccalConfig& config) {
  const WscConfig& w = config.wsc;
  const EncoderConfig& e = w.encoder;
  uint64_t h = 0x575343434Cu;  // "WSCCL"
  for (uint64_t v : {
           static_cast<uint64_t>(e.d_rt), static_cast<uint64_t>(e.d_lanes),
           static_cast<uint64_t>(e.d_oneway),
           static_cast<uint64_t>(e.d_signal),
           static_cast<uint64_t>(e.d_hidden),
           static_cast<uint64_t>(e.lstm_layers),
           static_cast<uint64_t>(e.sequence_model),
           static_cast<uint64_t>(e.aggregation),
           static_cast<uint64_t>(e.use_temporal),
           static_cast<uint64_t>(e.use_projection_head),
           static_cast<uint64_t>(e.projection_dim), e.seed,
           FloatBits(w.loss.temperature),
           static_cast<uint64_t>(w.loss.pos_edges_per_query),
           static_cast<uint64_t>(w.loss.neg_edges_per_query),
           FloatBits(w.lambda), static_cast<uint64_t>(w.anchors_per_batch),
           FloatBits(w.lr), FloatBits(w.grad_clip),
           static_cast<uint64_t>(w.weak_labels),
           static_cast<uint64_t>(w.use_global),
           static_cast<uint64_t>(w.use_local),
           static_cast<uint64_t>(w.grad_shards),
           FloatBits(w.watchdog_max_grad_norm),
           static_cast<uint64_t>(w.watchdog_max_consecutive_bad), w.seed,
           static_cast<uint64_t>(config.curriculum.strategy),
           static_cast<uint64_t>(config.curriculum.num_meta_sets),
           static_cast<uint64_t>(config.curriculum.expert_epochs),
           static_cast<uint64_t>(config.stage_epochs),
           static_cast<uint64_t>(config.final_epochs)}) {
    h = MixSeed(h, v);
  }
  return h;
}

std::string WsccalPipeline::BuildPayload() const {
  ckpt::Writer w;
  w.Str(kPipelineTag);
  w.U32(kPipelineVersion);
  w.U64(ConfigFingerprint(config_));
  w.U8(completed_ ? 1 : 0);
  w.I32(next_stage_);
  w.I32(next_epoch_);
  w.U64(global_epoch_);
  w.F64(final_loss_);
  w.U32(static_cast<uint32_t>(stages_.size()));
  for (const auto& stage : stages_) {
    w.U32(static_cast<uint32_t>(stage.size()));
    for (int idx : stage) w.I32(idx);
  }
  const Status st = model_->SaveState(w);
  TPR_CHECK(st.ok()) << st.ToString();
  return w.TakeBytes();
}

Status WsccalPipeline::RestorePayload(std::string_view payload) {
  ckpt::Reader r(payload);
  std::string tag;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kPipelineTag) {
    return Status::FailedPrecondition("not a WSCCL pipeline checkpoint: " +
                                      tag);
  }
  uint32_t version = 0;
  TPR_RETURN_IF_ERROR(r.U32(&version));
  if (version != kPipelineVersion) {
    return Status::FailedPrecondition(
        "unsupported pipeline checkpoint version " + std::to_string(version));
  }
  uint64_t fingerprint = 0;
  TPR_RETURN_IF_ERROR(r.U64(&fingerprint));
  if (fingerprint != ConfigFingerprint(config_)) {
    return Status::FailedPrecondition(
        "checkpoint was trained under a different WSCCL configuration; "
        "refusing to resume");
  }
  uint8_t completed = 0;
  TPR_RETURN_IF_ERROR(r.U8(&completed));
  TPR_RETURN_IF_ERROR(r.I32(&next_stage_));
  TPR_RETURN_IF_ERROR(r.I32(&next_epoch_));
  TPR_RETURN_IF_ERROR(r.U64(&global_epoch_));
  TPR_RETURN_IF_ERROR(r.F64(&final_loss_));
  uint32_t num_stages = 0;
  TPR_RETURN_IF_ERROR(r.U32(&num_stages));
  const size_t pool_size = model_->features().data->unlabeled.size();
  if (num_stages > pool_size + 1) {
    return Status::OutOfRange("checkpoint stage count exceeds pool size");
  }
  stages_.assign(num_stages, {});
  for (auto& stage : stages_) {
    uint32_t len = 0;
    TPR_RETURN_IF_ERROR(r.U32(&len));
    if (len > pool_size) {
      return Status::OutOfRange("checkpoint stage length exceeds pool size");
    }
    stage.resize(len);
    for (auto& idx : stage) {
      TPR_RETURN_IF_ERROR(r.I32(&idx));
      if (idx < 0 || static_cast<size_t>(idx) >= pool_size) {
        return Status::OutOfRange("checkpoint stage index out of pool range");
      }
    }
  }
  if (next_stage_ < 0 ||
      next_stage_ > static_cast<int>(stages_.size()) + 1 || next_epoch_ < 0) {
    return Status::OutOfRange("checkpoint schedule cursor out of range");
  }
  completed_ = completed != 0;
  return model_->LoadState(r);
}

StatusOr<std::string> WsccalPipeline::Serialize() const {
  if (!completed_) {
    return Status::FailedPrecondition(
        "cannot serialize a partially trained pipeline");
  }
  return BuildPayload();
}

StatusOr<std::unique_ptr<WsccalPipeline>> WsccalPipeline::Deserialize(
    std::shared_ptr<const FeatureSpace> features, const WsccalConfig& config,
    std::string_view payload) {
  if (features == nullptr) return Status::InvalidArgument("null features");
  auto pipeline = std::unique_ptr<WsccalPipeline>(new WsccalPipeline());
  pipeline->config_ = config;
  pipeline->model_ = std::make_unique<WscModel>(features, config.wsc);
  TPR_RETURN_IF_ERROR(pipeline->RestorePayload(payload));
  if (!pipeline->completed_) {
    return Status::FailedPrecondition(
        "checkpoint describes an unfinished training run");
  }
  return pipeline;
}

StatusOr<std::unique_ptr<WsccalPipeline>> WsccalPipeline::Train(
    std::shared_ptr<const FeatureSpace> features, const WsccalConfig& config) {
  if (features == nullptr) return Status::InvalidArgument("null features");
  const auto& pool = features->data->unlabeled;
  if (pool.empty()) return Status::InvalidArgument("empty unlabeled pool");

  obs::ScopedSpan train_span("wsccl.train");
  std::vector<int> all(pool.size());
  std::iota(all.begin(), all.end(), 0);

  auto pipeline = std::unique_ptr<WsccalPipeline>(new WsccalPipeline());
  pipeline->config_ = config;

  std::string dir = config.ckpt_dir;
  if (dir.empty()) {
    if (const char* env = std::getenv("TPR_CKPT_DIR")) dir = env;
  }
  std::unique_ptr<ckpt::CheckpointDir> cdir;
  bool resumed = false;
  if (!dir.empty()) {
    cdir = std::make_unique<ckpt::CheckpointDir>(dir);
    auto loaded = cdir->LoadLatest();
    if (loaded.ok()) {
      obs::ScopedSpan resume_span("wsccl.resume");
      pipeline->model_ = std::make_unique<WscModel>(features, config.wsc);
      TPR_RETURN_IF_ERROR(pipeline->RestorePayload(loaded->payload));
      resumed = true;
      if (obs::MetricsEnabled()) {
        obs::GetCounter("wsccl.resumes").Add(1);
        obs::GetGauge("wsccl.resume_epoch")
            .Set(static_cast<double>(pipeline->global_epoch_));
      }
      // A completed checkpoint IS the trained model; nothing to train.
      if (pipeline->completed_) return pipeline;
    }
  }
  if (!resumed) {
    StatusOr<std::vector<std::vector<int>>> stages = [&] {
      obs::ScopedSpan span("wsccl.build_curriculum");
      return BuildCurriculum(features, config.wsc, config.curriculum, all);
    }();
    if (!stages.ok()) return stages.status();
    pipeline->stages_ = *std::move(stages);
    pipeline->model_ = std::make_unique<WscModel>(features, config.wsc);
  }

  // Stages ST_1..ST_M easy to hard (Section VI-C), then the final
  // full-data stage ST_{M+1}, starting from the checkpoint cursor.
  // Per-phase loss and wall time land in wsccl.stage<i>.* metrics.
  // Returns OK when the whole schedule ran; `stopped` reports a
  // stop_after_epochs exit.
  bool stopped = false;
  const auto run_schedule = [&]() -> Status {
    const int num_stages = static_cast<int>(pipeline->stages_.size());
    for (int s = pipeline->next_stage_; s <= num_stages; ++s) {
      const bool final_stage = s == num_stages;
      const auto& stage = final_stage ? all : pipeline->stages_[s];
      const int epochs =
          final_stage ? config.final_epochs : config.stage_epochs;
      const int start_epoch = s == pipeline->next_stage_
                                  ? std::min(pipeline->next_epoch_, epochs)
                                  : 0;
      if (stage.empty()) continue;
      obs::ScopedSpan stage_span(final_stage ? "wsccl.final_stage"
                                             : "wsccl.stage",
                                 "stage", static_cast<double>(s));
      Stopwatch stage_sw;
      double stage_loss = 0.0;
      for (int epoch = start_epoch; epoch < epochs; ++epoch) {
        auto loss = pipeline->model_->TrainEpoch(stage);
        if (!loss.ok()) return loss.status();
        stage_loss = *loss;
        ++pipeline->global_epoch_;
        pipeline->final_loss_ = *loss;
        // Cursor names the NEXT epoch to run, so a checkpoint written
        // now resumes directly after this epoch.
        if (epoch + 1 < epochs) {
          pipeline->next_stage_ = s;
          pipeline->next_epoch_ = epoch + 1;
        } else {
          pipeline->next_stage_ = s + 1;
          pipeline->next_epoch_ = 0;
        }
        const bool last = final_stage && epoch == epochs - 1;
        if (cdir != nullptr && !last &&
            config.checkpoint_every_n_epochs > 0 &&
            pipeline->global_epoch_ %
                    static_cast<uint64_t>(
                        config.checkpoint_every_n_epochs) ==
                0) {
          TPR_RETURN_IF_ERROR(cdir->Save(pipeline->global_epoch_,
                                         pipeline->BuildPayload()));
        }
        if (config.stop_after_epochs > 0 &&
            pipeline->global_epoch_ >=
                static_cast<uint64_t>(config.stop_after_epochs) &&
            !last) {
          // Simulated kill: return the partial pipeline as-is. State
          // past the last periodic checkpoint is intentionally lost.
          stopped = true;
          return Status::OK();
        }
      }
      if (obs::MetricsEnabled()) {
        const std::string prefix =
            final_stage ? "wsccl.final_stage"
                        : "wsccl.stage" + std::to_string(s);
        obs::GetGauge(prefix + ".loss").Set(stage_loss);
        obs::GetGauge(prefix + ".seconds").Set(stage_sw.ElapsedSeconds());
      }
    }
    return Status::OK();
  };

  // Watchdog recovery: a DataLoss abort (a run of poisoned batches)
  // rolls the pipeline back to the last durable checkpoint generation
  // and re-runs the schedule from its cursor, a bounded number of times.
  // Any other error — or DataLoss with nothing to roll back to — is
  // returned as-is.
  for (int rollbacks = 0;;) {
    const Status st = run_schedule();
    if (st.ok()) break;
    if (st.code() != StatusCode::kDataLoss || cdir == nullptr ||
        rollbacks >= config.max_watchdog_rollbacks) {
      return st;
    }
    auto reloaded = cdir->LoadLatest();
    if (!reloaded.ok()) return st;
    TPR_RETURN_IF_ERROR(pipeline->RestorePayload(reloaded->payload));
    ++rollbacks;
    obs::GetCounter("wsccl.watchdog_rollbacks").Add(1);
    TPR_LOG(Warning) << "watchdog rollback " << rollbacks << "/"
                     << config.max_watchdog_rollbacks
                     << ": resuming from checkpoint seq " << reloaded->seq
                     << " (" << st.ToString() << ")";
  }
  if (stopped) return pipeline;

  pipeline->completed_ = true;
  if (cdir != nullptr) {
    TPR_RETURN_IF_ERROR(
        cdir->Save(pipeline->global_epoch_, pipeline->BuildPayload()));
  }
  // Training is over: the per-worker arenas hold a full training step's
  // worth of recycled graph buffers each. Hand that memory back so a
  // long-lived process (serving, benches over many cities) does not pin
  // peak-training RSS.
  std::atomic<uint64_t> released{0};
  par::DefaultPool().RunOnAllWorkers(
      [&released](int) { released += kern::TrimThreadArena(); });
  if (obs::MetricsEnabled()) {
    obs::GetCounter("nn.arena_trimmed_bytes").Add(released.load());
  }
  return pipeline;
}

}  // namespace tpr::core
