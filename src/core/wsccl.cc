#include "core/wsccl.h"

#include <numeric>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace tpr::core {

StatusOr<std::unique_ptr<WsccalPipeline>> WsccalPipeline::Train(
    std::shared_ptr<const FeatureSpace> features, const WsccalConfig& config) {
  if (features == nullptr) return Status::InvalidArgument("null features");
  const auto& pool = features->data->unlabeled;
  if (pool.empty()) return Status::InvalidArgument("empty unlabeled pool");

  obs::ScopedSpan train_span("wsccl.train");
  std::vector<int> all(pool.size());
  std::iota(all.begin(), all.end(), 0);

  StatusOr<std::vector<std::vector<int>>> stages = [&] {
    obs::ScopedSpan span("wsccl.build_curriculum");
    return BuildCurriculum(features, config.wsc, config.curriculum, all);
  }();
  if (!stages.ok()) return stages.status();

  auto pipeline = std::unique_ptr<WsccalPipeline>(new WsccalPipeline());
  pipeline->model_ = std::make_unique<WscModel>(features, config.wsc);

  // Stages ST_1..ST_M, easy to hard (Section VI-C). Per-phase loss and
  // wall time land in wsccl.stage<i>.* metrics.
  for (size_t i = 0; i < stages->size(); ++i) {
    const auto& stage = (*stages)[i];
    if (stage.empty()) continue;
    obs::ScopedSpan stage_span("wsccl.stage", "stage",
                               static_cast<double>(i));
    Stopwatch stage_sw;
    double stage_loss = 0.0;
    for (int epoch = 0; epoch < config.stage_epochs; ++epoch) {
      auto loss = pipeline->model_->TrainEpoch(stage);
      if (!loss.ok()) return loss.status();
      stage_loss = *loss;
    }
    if (obs::MetricsEnabled()) {
      const std::string prefix = "wsccl.stage" + std::to_string(i);
      obs::GetGauge(prefix + ".loss").Set(stage_loss);
      obs::GetGauge(prefix + ".seconds").Set(stage_sw.ElapsedSeconds());
    }
  }

  // Final stage ST_{M+1}: the whole training set.
  obs::ScopedSpan final_span("wsccl.final_stage", "epochs",
                             config.final_epochs);
  Stopwatch final_sw;
  double final_loss = 0.0;
  for (int epoch = 0; epoch < config.final_epochs; ++epoch) {
    auto loss = pipeline->model_->TrainEpoch(all);
    if (!loss.ok()) return loss.status();
    final_loss = *loss;
  }
  if (obs::MetricsEnabled()) {
    obs::GetGauge("wsccl.final_stage.loss").Set(final_loss);
    obs::GetGauge("wsccl.final_stage.seconds").Set(final_sw.ElapsedSeconds());
  }
  pipeline->final_loss_ = final_loss;
  return pipeline;
}

}  // namespace tpr::core
