#include "core/wsccl.h"

#include <numeric>

#include "util/logging.h"

namespace tpr::core {

StatusOr<std::unique_ptr<WsccalPipeline>> WsccalPipeline::Train(
    std::shared_ptr<const FeatureSpace> features, const WsccalConfig& config) {
  if (features == nullptr) return Status::InvalidArgument("null features");
  const auto& pool = features->data->unlabeled;
  if (pool.empty()) return Status::InvalidArgument("empty unlabeled pool");

  std::vector<int> all(pool.size());
  std::iota(all.begin(), all.end(), 0);

  auto stages =
      BuildCurriculum(features, config.wsc, config.curriculum, all);
  if (!stages.ok()) return stages.status();

  auto pipeline = std::unique_ptr<WsccalPipeline>(new WsccalPipeline());
  pipeline->model_ = std::make_unique<WscModel>(features, config.wsc);

  // Stages ST_1..ST_M, easy to hard (Section VI-C).
  for (const auto& stage : *stages) {
    if (stage.empty()) continue;
    for (int epoch = 0; epoch < config.stage_epochs; ++epoch) {
      auto loss = pipeline->model_->TrainEpoch(stage);
      if (!loss.ok()) return loss.status();
    }
  }

  // Final stage ST_{M+1}: the whole training set.
  double final_loss = 0.0;
  for (int epoch = 0; epoch < config.final_epochs; ++epoch) {
    auto loss = pipeline->model_->TrainEpoch(all);
    if (!loss.ok()) return loss.status();
    final_loss = *loss;
  }
  pipeline->final_loss_ = final_loss;
  return pipeline;
}

}  // namespace tpr::core
