#include "core/features.h"

namespace tpr::core {

StatusOr<FeatureSpace> BuildFeatureSpace(
    std::shared_ptr<const synth::CityDataset> data,
    const FeatureConfig& config) {
  if (data == nullptr || data->network == nullptr) {
    return Status::InvalidArgument("null dataset");
  }
  FeatureSpace fs;
  fs.config = config;
  fs.data = data;

  {
    node2vec::Node2VecConfig n2v = config.node2vec;
    n2v.dim = config.road_embedding_dim;
    auto emb = node2vec::TrainNode2Vec(data->network->BuildTopologyGraph(), n2v);
    if (!emb.ok()) return emb.status();
    fs.road_embeddings = std::move(emb).value();
  }
  {
    node2vec::Node2VecConfig n2v = config.node2vec;
    n2v.dim = config.temporal_embedding_dim;
    n2v.seed = config.node2vec.seed + 1;
    auto emb = node2vec::TrainNode2Vec(
        graph::BuildTemporalGraph(config.temporal_graph), n2v);
    if (!emb.ok()) return emb.status();
    fs.temporal_embeddings = std::move(emb).value();
  }
  return fs;
}

}  // namespace tpr::core
