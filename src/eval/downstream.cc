#include "eval/downstream.h"

#include <set>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpr::eval {

gbdt::Matrix BuildFeatureMatrix(
    const std::vector<synth::TemporalPathSample>& samples,
    const PathEncoderFn& encoder) {
  TPR_CHECK(!samples.empty());
  const auto first = encoder(samples[0]);
  gbdt::Matrix x(static_cast<int>(samples.size()),
                 static_cast<int>(first.size()));
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto features = i == 0 ? first : encoder(samples[i]);
    TPR_CHECK(features.size() == static_cast<size_t>(x.cols));
    std::copy(features.begin(), features.end(),
              x.data.begin() + i * features.size());
  }
  return x;
}

void SplitGroups(const std::vector<synth::TemporalPathSample>& samples,
                 double train_fraction, uint64_t seed,
                 std::vector<int>* train_idx, std::vector<int>* test_idx) {
  std::set<int> group_set;
  for (const auto& s : samples) group_set.insert(s.group);
  std::vector<int> groups(group_set.begin(), group_set.end());
  Rng rng(seed);
  rng.Shuffle(groups);
  const size_t train_groups =
      static_cast<size_t>(groups.size() * train_fraction);
  std::set<int> train_set(groups.begin(), groups.begin() + train_groups);
  train_idx->clear();
  test_idx->clear();
  for (size_t i = 0; i < samples.size(); ++i) {
    if (train_set.count(samples[i].group)) {
      train_idx->push_back(static_cast<int>(i));
    } else {
      test_idx->push_back(static_cast<int>(i));
    }
  }
}

namespace {

gbdt::Matrix SelectRows(const gbdt::Matrix& x, const std::vector<int>& rows) {
  gbdt::Matrix out(static_cast<int>(rows.size()), x.cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(x.row(rows[i]), x.row(rows[i]) + x.cols,
              out.data.begin() + i * x.cols);
  }
  return out;
}

StatusOr<TaskScores> EvaluateImpl(const synth::CityDataset& data,
                                  const PathEncoderFn& encoder,
                                  const DownstreamOptions& options,
                                  bool include_recommendation) {
  const auto& samples = data.labeled;
  if (samples.empty()) return Status::InvalidArgument("no labeled samples");

  const gbdt::Matrix x = BuildFeatureMatrix(samples, encoder);
  std::vector<int> train_idx, test_idx;
  SplitGroups(samples, options.train_fraction, options.split_seed, &train_idx,
              &test_idx);
  if (train_idx.empty() || test_idx.empty()) {
    return Status::InvalidArgument("degenerate train/test split");
  }
  const gbdt::Matrix x_train = SelectRows(x, train_idx);
  const gbdt::Matrix x_test = SelectRows(x, test_idx);

  TaskScores scores;

  // ---- Travel time estimation (GBR). ----
  {
    std::vector<float> y_train(train_idx.size());
    for (size_t i = 0; i < train_idx.size(); ++i) {
      y_train[i] = static_cast<float>(samples[train_idx[i]].travel_time_s);
    }
    gbdt::GradientBoostingRegressor gbr(options.boosting);
    TPR_RETURN_IF_ERROR(gbr.Fit(x_train, y_train));
    std::vector<double> truth(test_idx.size()), pred(test_idx.size());
    for (size_t i = 0; i < test_idx.size(); ++i) {
      truth[i] = samples[test_idx[i]].travel_time_s;
      pred[i] = gbr.Predict(x_test.row(static_cast<int>(i)));
    }
    auto mae = Mae(truth, pred);
    auto mare = Mare(truth, pred);
    auto mape = Mape(truth, pred);
    if (!mae.ok()) return mae.status();
    if (!mare.ok()) return mare.status();
    if (!mape.ok()) return mape.status();
    scores.tte_mae = *mae;
    scores.tte_mare = *mare;
    scores.tte_mape = *mape;
  }

  // ---- Path ranking (GBR on rank scores + grouped tau/rho). ----
  {
    std::vector<float> y_train(train_idx.size());
    for (size_t i = 0; i < train_idx.size(); ++i) {
      y_train[i] = static_cast<float>(samples[train_idx[i]].rank_score);
    }
    gbdt::GradientBoostingRegressor gbr(options.boosting);
    TPR_RETURN_IF_ERROR(gbr.Fit(x_train, y_train));
    std::vector<double> truth(test_idx.size()), pred(test_idx.size());
    std::vector<int> groups(test_idx.size());
    for (size_t i = 0; i < test_idx.size(); ++i) {
      truth[i] = samples[test_idx[i]].rank_score;
      pred[i] = gbr.Predict(x_test.row(static_cast<int>(i)));
      groups[i] = samples[test_idx[i]].group;
    }
    auto mae = Mae(truth, pred);
    auto tau = GroupedKendallTau(groups, truth, pred);
    auto rho = GroupedSpearmanRho(groups, truth, pred);
    if (!mae.ok()) return mae.status();
    if (!tau.ok()) return tau.status();
    if (!rho.ok()) return rho.status();
    scores.pr_mae = *mae;
    scores.pr_tau = *tau;
    scores.pr_rho = *rho;
  }

  // ---- Path recommendation (GBC). ----
  if (include_recommendation) {
    std::vector<int> y_train(train_idx.size());
    for (size_t i = 0; i < train_idx.size(); ++i) {
      y_train[i] = samples[train_idx[i]].recommended;
    }
    gbdt::GradientBoostingClassifier gbc(options.boosting);
    TPR_RETURN_IF_ERROR(gbc.Fit(x_train, y_train));
    std::vector<int> truth(test_idx.size()), pred(test_idx.size());
    for (size_t i = 0; i < test_idx.size(); ++i) {
      truth[i] = samples[test_idx[i]].recommended;
      pred[i] = gbc.Predict(x_test.row(static_cast<int>(i)));
    }
    auto acc = Accuracy(truth, pred);
    auto hr = HitRate(truth, pred);
    if (!acc.ok()) return acc.status();
    if (!hr.ok()) return hr.status();
    scores.rec_acc = *acc;
    scores.rec_hr = *hr;
  }

  return scores;
}

}  // namespace

StatusOr<TaskScores> EvaluateTasks(const synth::CityDataset& data,
                                   const PathEncoderFn& encoder,
                                   const DownstreamOptions& options) {
  return EvaluateImpl(data, encoder, options, /*include_recommendation=*/true);
}

StatusOr<TaskScores> EvaluateRegressionTasks(const synth::CityDataset& data,
                                             const PathEncoderFn& encoder,
                                             const DownstreamOptions& options) {
  return EvaluateImpl(data, encoder, options,
                      /*include_recommendation=*/false);
}

}  // namespace tpr::eval
