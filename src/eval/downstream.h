#ifndef TPR_EVAL_DOWNSTREAM_H_
#define TPR_EVAL_DOWNSTREAM_H_

#include <functional>
#include <vector>

#include "gbdt/gradient_boosting.h"
#include "synth/dataset.h"
#include "util/status.h"

namespace tpr::eval {

/// Produces a fixed-size representation for a temporal path. All
/// representation learners (WSCCL and every baseline) are evaluated
/// through this interface so the downstream probes are identical.
using PathEncoderFn =
    std::function<std::vector<float>(const synth::TemporalPathSample&)>;

/// Scores for the three downstream tasks (Tables III and IV).
struct TaskScores {
  // Travel time estimation.
  double tte_mae = 0, tte_mare = 0, tte_mape = 0;
  // Path ranking.
  double pr_mae = 0, pr_tau = 0, pr_rho = 0;
  // Path recommendation.
  double rec_acc = 0, rec_hr = 0;
};

/// Options for the probe evaluation.
struct DownstreamOptions {
  DownstreamOptions() {
    boosting.num_trees = 250;
    boosting.tree.max_depth = 4;
  }

  double train_fraction = 0.8;  // paper: 80/20 split of labeled paths
  gbdt::BoostingConfig boosting;
  uint64_t split_seed = 99;
};

/// Encodes samples into a feature matrix via the encoder.
gbdt::Matrix BuildFeatureMatrix(
    const std::vector<synth::TemporalPathSample>& samples,
    const PathEncoderFn& encoder);

/// Runs all three downstream tasks on the labeled pool of a dataset:
/// GBR probes for travel time and ranking score, a GBC probe for
/// recommendation. The train/test split is by OD group so that ranking
/// metrics see complete groups.
StatusOr<TaskScores> EvaluateTasks(const synth::CityDataset& data,
                                   const PathEncoderFn& encoder,
                                   const DownstreamOptions& options = {});

/// As EvaluateTasks but restricted to the travel-time task (used by
/// parameter sweeps that only report TTE + ranking).
StatusOr<TaskScores> EvaluateRegressionTasks(
    const synth::CityDataset& data, const PathEncoderFn& encoder,
    const DownstreamOptions& options = {});

/// Splits group ids into train/test group sets deterministically.
void SplitGroups(const std::vector<synth::TemporalPathSample>& samples,
                 double train_fraction, uint64_t seed,
                 std::vector<int>* train_idx, std::vector<int>* test_idx);

}  // namespace tpr::eval

#endif  // TPR_EVAL_DOWNSTREAM_H_
