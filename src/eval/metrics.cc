#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace tpr::eval {
namespace {

Status CheckSizes(size_t a, size_t b) {
  if (a == 0) return Status::InvalidArgument("empty input");
  if (a != b) return Status::InvalidArgument("size mismatch");
  return Status::OK();
}

}  // namespace

StatusOr<double> Mae(const std::vector<double>& truth,
                     const std::vector<double>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  double s = 0;
  for (size_t i = 0; i < truth.size(); ++i) s += std::fabs(truth[i] - pred[i]);
  return s / truth.size();
}

StatusOr<double> Mare(const std::vector<double>& truth,
                      const std::vector<double>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  double num = 0, den = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    num += std::fabs(truth[i] - pred[i]);
    den += std::fabs(truth[i]);
  }
  if (den == 0) return Status::InvalidArgument("all-zero ground truth");
  return num / den;
}

StatusOr<double> Mape(const std::vector<double>& truth,
                      const std::vector<double>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  double s = 0;
  size_t n = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0) continue;
    s += std::fabs((truth[i] - pred[i]) / truth[i]);
    ++n;
  }
  if (n == 0) return Status::InvalidArgument("all-zero ground truth");
  return 100.0 * s / static_cast<double>(n);
}

StatusOr<double> KendallTau(const std::vector<double>& truth,
                            const std::vector<double>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  const size_t n = truth.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 items");
  long long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double a = truth[i] - truth[j];
      const double b = pred[i] - pred[j];
      const double s = a * b;
      if (s > 0) ++concordant;
      else if (s < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return (concordant - discordant) / pairs;
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

StatusOr<double> SpearmanRho(const std::vector<double>& truth,
                             const std::vector<double>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  const size_t n = truth.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 items");
  const auto ra = AverageRanks(truth);
  const auto rb = AverageRanks(pred);
  // Pearson correlation of the rank vectors (robust to ties).
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va == 0 || vb == 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

StatusOr<double> Accuracy(const std::vector<int>& truth,
                          const std::vector<int>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) correct += truth[i] == pred[i];
  return static_cast<double>(correct) / truth.size();
}

StatusOr<double> HitRate(const std::vector<int>& truth,
                         const std::vector<int>& pred) {
  TPR_RETURN_IF_ERROR(CheckSizes(truth.size(), pred.size()));
  size_t tp = 0, fn = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      if (pred[i] == 1) ++tp;
      else ++fn;
    }
  }
  if (tp + fn == 0) return Status::InvalidArgument("no positive labels");
  return static_cast<double>(tp) / static_cast<double>(tp + fn);
}

namespace {

template <typename MetricFn>
StatusOr<double> GroupedMetric(const std::vector<int>& groups,
                               const std::vector<double>& truth,
                               const std::vector<double>& pred,
                               MetricFn metric) {
  TPR_RETURN_IF_ERROR(CheckSizes(groups.size(), truth.size()));
  TPR_RETURN_IF_ERROR(CheckSizes(groups.size(), pred.size()));
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    by_group[groups[i]].first.push_back(truth[i]);
    by_group[groups[i]].second.push_back(pred[i]);
  }
  double total = 0;
  size_t counted = 0;
  for (const auto& [g, tp] : by_group) {
    if (tp.first.size() < 2) continue;
    auto v = metric(tp.first, tp.second);
    if (!v.ok()) return v.status();
    total += *v;
    ++counted;
  }
  if (counted == 0) return Status::InvalidArgument("no group with >=2 items");
  return total / static_cast<double>(counted);
}

}  // namespace

StatusOr<double> GroupedKendallTau(const std::vector<int>& groups,
                                   const std::vector<double>& truth,
                                   const std::vector<double>& pred) {
  return GroupedMetric(groups, truth, pred, KendallTau);
}

StatusOr<double> GroupedSpearmanRho(const std::vector<int>& groups,
                                    const std::vector<double>& truth,
                                    const std::vector<double>& pred) {
  return GroupedMetric(groups, truth, pred, SpearmanRho);
}

}  // namespace tpr::eval
