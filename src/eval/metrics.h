#ifndef TPR_EVAL_METRICS_H_
#define TPR_EVAL_METRICS_H_

#include <vector>

#include "util/status.h"

namespace tpr::eval {

/// Mean absolute error (Eq. 14).
StatusOr<double> Mae(const std::vector<double>& truth,
                     const std::vector<double>& pred);

/// Mean absolute relative error: sum |x - x̂| / sum |x| (Eq. 14).
StatusOr<double> Mare(const std::vector<double>& truth,
                      const std::vector<double>& pred);

/// Mean absolute percentage error, in percent (Eq. 14). Ground-truth
/// zeros are skipped.
StatusOr<double> Mape(const std::vector<double>& truth,
                      const std::vector<double>& pred);

/// Kendall rank correlation coefficient tau (Eq. 15). Ties in either
/// ranking count as discordant-neutral (tau-a on the strict pairs).
StatusOr<double> KendallTau(const std::vector<double>& truth,
                            const std::vector<double>& pred);

/// Spearman rank correlation coefficient rho (Eq. 15), computed on
/// average ranks (handles ties).
StatusOr<double> SpearmanRho(const std::vector<double>& truth,
                             const std::vector<double>& pred);

/// Classification accuracy (Eq. 16) on 0/1 labels.
StatusOr<double> Accuracy(const std::vector<int>& truth,
                          const std::vector<int>& pred);

/// Hit rate TP / (TP + FN) (Eq. 16) on 0/1 labels.
StatusOr<double> HitRate(const std::vector<int>& truth,
                         const std::vector<int>& pred);

/// Average of a per-group rank correlation: items are grouped by
/// group_id, the metric is computed inside each group with >= 2 items,
/// and the group values are averaged. This is how path-ranking tau/rho
/// is evaluated (competitive paths share an OD query).
StatusOr<double> GroupedKendallTau(const std::vector<int>& groups,
                                   const std::vector<double>& truth,
                                   const std::vector<double>& pred);
StatusOr<double> GroupedSpearmanRho(const std::vector<int>& groups,
                                    const std::vector<double>& truth,
                                    const std::vector<double>& pred);

/// Fractional ranks (1-based, ties get the average rank).
std::vector<double> AverageRanks(const std::vector<double>& values);

}  // namespace tpr::eval

#endif  // TPR_EVAL_METRICS_H_
