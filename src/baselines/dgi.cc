#include "baselines/dgi.h"

#include <numeric>

#include "baselines/common.h"
#include "nn/optimizer.h"

namespace tpr::baselines {
namespace {

nn::Tensor BuildNodeFeatures(const core::FeatureSpace& features) {
  const auto& network = *features.data->network;
  const int d = features.config.road_embedding_dim;
  nn::Tensor x(network.num_nodes(), d + 1);
  for (int v = 0; v < network.num_nodes(); ++v) {
    const auto& emb = features.road_embeddings[v];
    float* row = x.data() + static_cast<size_t>(v) * (d + 1);
    std::copy(emb.begin(), emb.end(), row);
    row[d] = static_cast<float>(network.OutEdges(v).size()) / 8.0f;
  }
  return x;
}

}  // namespace

DgiModel::DgiModel(std::shared_ptr<const core::FeatureSpace> features,
                   Config config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  adjacency_ = NodeGraphAdjacency(*features_->data->network);
  node_features_ = BuildNodeFeatures(*features_);
  gcn_weight_ = std::make_unique<nn::Linear>(node_features_.cols(),
                                             config_.hidden_dim, rng_);
  discriminator_ =
      std::make_unique<nn::Linear>(config_.hidden_dim, config_.hidden_dim,
                                   rng_, /*bias=*/false);
}

nn::Var DgiModel::EncodeNodes(const nn::Var& x) const {
  nn::Var a = nn::Var::Leaf(adjacency_);
  return nn::Tanh(gcn_weight_->Forward(nn::MatMul(a, x)));
}

Status DgiModel::Train() {
  std::vector<nn::Var> params = gcn_weight_->Parameters();
  auto dp = discriminator_->Parameters();
  params.insert(params.end(), dp.begin(), dp.end());
  nn::Adam opt(params, config_.lr);

  const int n = node_features_.rows();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Corruption: row-shuffled node features.
    rng_.Shuffle(perm);
    nn::Tensor corrupted(n, node_features_.cols());
    for (int v = 0; v < n; ++v) {
      std::copy(node_features_.data() +
                    static_cast<size_t>(perm[v]) * node_features_.cols(),
                node_features_.data() +
                    static_cast<size_t>(perm[v] + 1) * node_features_.cols(),
                corrupted.data() + static_cast<size_t>(v) * node_features_.cols());
    }

    nn::Var h_real = EncodeNodes(nn::Var::Leaf(node_features_));
    nn::Var h_fake = EncodeNodes(nn::Var::Leaf(std::move(corrupted)));
    nn::Var summary = nn::Sigmoid(nn::RowMean(h_real));

    // Bilinear discriminator: score_i = h_i . (W s).
    nn::Var ws = discriminator_->Forward(summary);        // 1 x d
    auto scores = [&](const nn::Var& h) {
      // (n x d) * (d x 1) -> n x 1 via matmul with ws transposed; emulate
      // with elementwise mul + row sums: sum(h * ws_broadcast, cols).
      nn::Var prod = nn::Mul(h, nn::ConcatRows(
          std::vector<nn::Var>(static_cast<size_t>(h.rows()), ws)));
      // Row sums: mean * cols.
      return prod;
    };
    // loss = mean(softplus(-score_real)) + mean(softplus(score_fake))
    nn::Var real_prod = scores(h_real);
    nn::Var fake_prod = scores(h_fake);
    // Row-sum via matmul with a ones column vector.
    nn::Var ones = nn::Var::Leaf(nn::Tensor(config_.hidden_dim, 1, 1.0f));
    nn::Var real_scores = nn::MatMul(real_prod, ones);  // n x 1
    nn::Var fake_scores = nn::MatMul(fake_prod, ones);
    nn::Var loss = nn::Add(nn::Mean(nn::Softplus(nn::Scale(real_scores, -1.0f))),
                           nn::Mean(nn::Softplus(fake_scores)));

    opt.ZeroGrad();
    loss.Backward();
    opt.ClipGradNorm(5.0f);
    opt.Step();
  }

  // Freeze the node embeddings.
  nn::NoGradGuard no_grad;
  nn::Var h = EncodeNodes(nn::Var::Leaf(node_features_));
  node_embeddings_ = h.value();
  return Status::OK();
}

std::vector<float> DgiModel::Encode(
    const synth::TemporalPathSample& sample) const {
  const auto& network = *features_->data->network;
  const int d = node_embeddings_.cols();
  std::vector<float> rep(2 * d, 0.0f);
  for (int eid : sample.path) {
    const auto& e = network.edge(eid);
    for (int i = 0; i < d; ++i) {
      rep[i] += node_embeddings_.at(e.from, i);
      rep[d + i] += node_embeddings_.at(e.to, i);
    }
  }
  const float inv = 1.0f / static_cast<float>(sample.path.size());
  for (auto& v : rep) v *= inv;
  return rep;
}

std::vector<nn::Var> DgiModel::StateParams() const {
  std::vector<nn::Var> params = gcn_weight_->Parameters();
  for (const auto& p : discriminator_->Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::Tensor> DgiModel::ExtraState() const {
  return {node_embeddings_};
}

Status DgiModel::SetExtraState(std::vector<nn::Tensor> state) {
  if (state.size() != 1) {
    return Status::FailedPrecondition(
        "DGI checkpoint must hold exactly the node-embedding table");
  }
  if (!state[0].empty() && state[0].rows() != adjacency_.rows()) {
    return Status::FailedPrecondition(
        "DGI node-embedding table does not match the road network");
  }
  node_embeddings_ = std::move(state[0]);
  return Status::OK();
}

}  // namespace tpr::baselines
