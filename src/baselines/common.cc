#include "baselines/common.h"

#include <cmath>

#include "util/logging.h"

namespace tpr::baselines {

int EdgeFeatureDim(const core::FeatureSpace& features) {
  return graph::kNumRoadTypes + 3 + 2 * features.config.road_embedding_dim;
}

std::vector<float> EdgeFeatureVector(const core::FeatureSpace& features,
                                     int edge_id) {
  const auto& network = *features.data->network;
  const auto& e = network.edge(edge_id);
  std::vector<float> f;
  f.reserve(EdgeFeatureDim(features));
  for (int t = 0; t < graph::kNumRoadTypes; ++t) {
    f.push_back(t == static_cast<int>(e.road_type) ? 1.0f : 0.0f);
  }
  f.push_back(static_cast<float>(e.num_lanes) / graph::kMaxLanes);
  f.push_back(e.one_way ? 1.0f : 0.0f);
  f.push_back(e.has_signal ? 1.0f : 0.0f);
  const auto& from_vec = features.road_embeddings[e.from];
  const auto& to_vec = features.road_embeddings[e.to];
  f.insert(f.end(), from_vec.begin(), from_vec.end());
  f.insert(f.end(), to_vec.begin(), to_vec.end());
  return f;
}

nn::Tensor AllEdgeFeatures(const core::FeatureSpace& features) {
  const auto& network = *features.data->network;
  const int dim = EdgeFeatureDim(features);
  nn::Tensor x(network.num_edges(), dim);
  for (int e = 0; e < network.num_edges(); ++e) {
    const auto f = EdgeFeatureVector(features, e);
    std::copy(f.begin(), f.end(),
              x.data() + static_cast<size_t>(e) * dim);
  }
  return x;
}

namespace {

nn::Tensor NormalizeAdjacency(std::vector<std::pair<int, int>> arcs, int n) {
  nn::Tensor a(n, n);
  for (int i = 0; i < n; ++i) a.at(i, i) = 1.0f;  // self loops
  for (const auto& [u, v] : arcs) {
    a.at(u, v) = 1.0f;
    a.at(v, u) = 1.0f;
  }
  std::vector<float> degree(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) degree[i] += a.at(i, j);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (a.at(i, j) != 0.0f) {
        a.at(i, j) /= std::sqrt(degree[i]) * std::sqrt(degree[j]);
      }
    }
  }
  return a;
}

}  // namespace

nn::Tensor LineGraphAdjacency(const graph::RoadNetwork& network) {
  std::vector<std::pair<int, int>> arcs;
  for (int e = 0; e < network.num_edges(); ++e) {
    const int head = network.edge(e).to;
    for (int next : network.OutEdges(head)) {
      if (next != e) arcs.emplace_back(e, next);
    }
  }
  return NormalizeAdjacency(std::move(arcs), network.num_edges());
}

nn::Tensor NodeGraphAdjacency(const graph::RoadNetwork& network) {
  std::vector<std::pair<int, int>> arcs;
  for (const auto& e : network.edges()) arcs.emplace_back(e.from, e.to);
  return NormalizeAdjacency(std::move(arcs), network.num_nodes());
}

std::vector<float> MeanRows(const nn::Tensor& matrix,
                            const std::vector<int>& rows) {
  TPR_CHECK(!rows.empty());
  std::vector<float> out(matrix.cols(), 0.0f);
  for (int r : rows) {
    const float* row = matrix.data() + static_cast<size_t>(r) * matrix.cols();
    for (int j = 0; j < matrix.cols(); ++j) out[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(rows.size());
  for (auto& v : out) v *= inv;
  return out;
}

}  // namespace tpr::baselines
