#include "baselines/pim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/common.h"
#include "nn/optimizer.h"
#include "par/thread_pool.h"

namespace tpr::baselines {

PimModel::PimModel(std::shared_ptr<const core::FeatureSpace> features,
                   Config config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  Rng init_rng(config.seed);
  lstm_ = std::make_unique<nn::Lstm>(EdgeFeatureDim(*features_),
                                     config_.hidden_dim, 1, init_rng);
}

nn::Var PimModel::LocalReps(const graph::Path& path) const {
  const int dim = EdgeFeatureDim(*features_);
  nn::Tensor x(static_cast<int>(path.size()), dim);
  for (size_t i = 0; i < path.size(); ++i) {
    const auto f = EdgeFeatureVector(*features_, path[i]);
    std::copy(f.begin(), f.end(), x.data() + i * dim);
  }
  return lstm_->Forward(nn::Var::Leaf(std::move(x)));
}

Status PimModel::Train() {
  const auto& pool = features_->data->unlabeled;
  if (pool.size() < 4) return Status::InvalidArgument("pool too small");
  nn::Adam opt(lstm_->Parameters(), config_.lr);

  std::vector<int> order(pool.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Curriculum negative sampling: early epochs draw negatives from the
    // paths most dissimilar in length (easy); later epochs restrict to
    // increasingly similar-length paths (hard).
    const double hardness =
        static_cast<double>(epoch) / std::max(1, config_.epochs - 1);
    rng_.Shuffle(order);
    for (int idx : order) {
      const auto& anchor_path = pool[idx].path;
      if (anchor_path.size() < 3) continue;

      // Positive view: random edge dropout of the same path.
      graph::Path view;
      for (int e : anchor_path) {
        if (!rng_.Bernoulli(config_.edge_dropout)) view.push_back(e);
      }
      if (view.size() < 2) view = anchor_path;

      // Negatives sorted by length dissimilarity; select from the easy or
      // hard end according to training progress.
      std::vector<std::pair<double, int>> by_dissimilarity;
      for (int k = 0; k < config_.negatives * 4; ++k) {
        const int j = static_cast<int>(rng_.UniformInt(pool.size()));
        if (j == idx) continue;
        const double d = std::fabs(static_cast<double>(pool[j].path.size()) -
                                   static_cast<double>(anchor_path.size()));
        by_dissimilarity.emplace_back(d, j);
      }
      std::sort(by_dissimilarity.begin(), by_dissimilarity.end());
      // hardness 0 -> take the tail (most dissimilar); 1 -> take the head.
      std::vector<int> negatives;
      const int available = static_cast<int>(by_dissimilarity.size());
      const int take = std::min(config_.negatives, available);
      const int offset = static_cast<int>(
          (1.0 - hardness) * (available - take));
      for (int k = 0; k < take; ++k) {
        negatives.push_back(by_dissimilarity[offset + k].second);
      }
      if (negatives.empty()) continue;

      // All rng draws for this anchor (besides the JSD row below) are
      // done; the forward passes only read shared parameters, so they
      // run in parallel into fixed slots without changing the result.
      const int num_neg = static_cast<int>(negatives.size());
      nn::Var anchor_locals, positive_locals;
      std::vector<nn::Var> neg_globals(num_neg);
      par::DefaultPool().ParallelFor(num_neg + 2, [&](int t) {
        if (t == 0) {
          anchor_locals = LocalReps(anchor_path);
        } else if (t == 1) {
          positive_locals = LocalReps(view);
        } else {
          neg_globals[t - 2] =
              nn::RowMean(LocalReps(pool[negatives[t - 2]].path));
        }
      });
      nn::Var anchor = nn::RowMean(anchor_locals);
      nn::Var positive = nn::RowMean(positive_locals);

      // Global InfoNCE with the single positive.
      const float inv_tau = 1.0f / config_.temperature;
      nn::Var pos_sim = nn::Scale(nn::CosineSim(anchor, positive), inv_tau);
      std::vector<nn::Var> sims = {pos_sim};
      for (const nn::Var& g : neg_globals) {
        sims.push_back(nn::Scale(nn::CosineSim(anchor, g), inv_tau));
      }
      nn::Var global_loss =
          nn::Sub(nn::LogSumExp(nn::ConcatCols(sims)), pos_sim);

      // Local JSD term: anchor global vs its own edges (positive) and one
      // edge of each negative path.
      std::vector<nn::Var> local_losses;
      const int r = static_cast<int>(
          rng_.UniformInt(static_cast<uint64_t>(anchor_locals.rows())));
      local_losses.push_back(nn::Softplus(nn::Scale(
          nn::Dot(anchor, nn::SliceRow(anchor_locals, r)), -1.0f)));
      for (const nn::Var& g : neg_globals) {
        local_losses.push_back(nn::Softplus(nn::Dot(anchor, g)));
      }
      nn::Var loss =
          nn::Add(global_loss, nn::Mean(nn::ConcatCols(local_losses)));

      opt.ZeroGrad();
      loss.Backward();
      opt.ClipGradNorm(5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

std::vector<float> PimModel::Encode(
    const synth::TemporalPathSample& sample) const {
  nn::NoGradGuard no_grad;
  nn::Var rep = nn::RowMean(LocalReps(sample.path));
  return std::vector<float>(rep.value().data(),
                            rep.value().data() + rep.value().size());
}

std::vector<float> PimTemporalModel::Encode(
    const synth::TemporalPathSample& sample) const {
  std::vector<float> rep = PimModel::Encode(sample);
  const int t_node = features_->TemporalNodeFor(sample.depart_time_s);
  const auto& t_vec = features_->temporal_embeddings[t_node];
  rep.insert(rep.end(), t_vec.begin(), t_vec.end());
  return rep;
}

std::vector<nn::Var> PimModel::StateParams() const {
  return lstm_->Parameters();
}

}  // namespace tpr::baselines
