#include "baselines/infograph.h"

#include <numeric>

#include "baselines/common.h"
#include "nn/optimizer.h"
#include "par/thread_pool.h"

namespace tpr::baselines {

InfoGraphModel::InfoGraphModel(
    std::shared_ptr<const core::FeatureSpace> features, Config config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  Rng init_rng(config.seed);
  const int in = EdgeFeatureDim(*features_);
  local_encoder_ = std::make_unique<nn::Mlp>(
      std::vector<int>{in, config_.hidden_dim, config_.hidden_dim}, init_rng);
  global_proj_ = std::make_unique<nn::Linear>(config_.hidden_dim,
                                              config_.hidden_dim, init_rng);
}

nn::Var InfoGraphModel::LocalReps(const graph::Path& path) const {
  const int dim = EdgeFeatureDim(*features_);
  nn::Tensor x(static_cast<int>(path.size()), dim);
  for (size_t i = 0; i < path.size(); ++i) {
    const auto f = EdgeFeatureVector(*features_, path[i]);
    std::copy(f.begin(), f.end(), x.data() + i * dim);
  }
  return local_encoder_->Forward(nn::Var::Leaf(std::move(x)));
}

Status InfoGraphModel::Train() {
  const auto& pool = features_->data->unlabeled;
  if (pool.empty()) return Status::InvalidArgument("empty unlabeled pool");

  std::vector<nn::Var> params = local_encoder_->Parameters();
  auto gp = global_proj_->Parameters();
  params.insert(params.end(), gp.begin(), gp.end());
  nn::Adam opt(params, config_.lr);

  std::vector<int> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_paths) {
      const size_t end =
          std::min(order.size(), start + config_.batch_paths);
      if (end - start < 2) break;

      // The per-path forward passes are independent (shared parameters
      // are only read), so they fill fixed slots in parallel; the
      // rng-coupled loss below stays sequential, keeping the result
      // bitwise identical to the serial version.
      const int b = static_cast<int>(end - start);
      std::vector<nn::Var> locals(b), globals(b);
      par::DefaultPool().ParallelFor(b, [&](int i) {
        nn::Var l = LocalReps(pool[order[start + i]].path);
        locals[i] = l;
        globals[i] = global_proj_->Forward(nn::RowMean(l));
      });

      // JSD MI estimator: positives (local_i of p, global of p), negatives
      // (local_i of p, global of q != p), subsampled per path.
      std::vector<nn::Var> losses;
      for (int p = 0; p < b; ++p) {
        const int rows = locals[p].rows();
        for (int s = 0; s < config_.locals_per_path; ++s) {
          const int r = static_cast<int>(
              rng_.UniformInt(static_cast<uint64_t>(rows)));
          nn::Var local = nn::SliceRow(locals[p], r);
          losses.push_back(nn::Softplus(
              nn::Scale(nn::Dot(local, globals[p]), -1.0f)));
          int q = static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(b)));
          if (q == p) q = (q + 1) % b;
          losses.push_back(nn::Softplus(nn::Dot(local, globals[q])));
        }
      }
      nn::Var loss = nn::Mean(nn::ConcatCols(losses));
      opt.ZeroGrad();
      loss.Backward();
      opt.ClipGradNorm(5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

std::vector<float> InfoGraphModel::Encode(
    const synth::TemporalPathSample& sample) const {
  nn::NoGradGuard no_grad;
  nn::Var g = global_proj_->Forward(nn::RowMean(LocalReps(sample.path)));
  return std::vector<float>(g.value().data(),
                            g.value().data() + g.value().size());
}

std::vector<nn::Var> InfoGraphModel::StateParams() const {
  std::vector<nn::Var> params = local_encoder_->Parameters();
  for (const auto& p : global_proj_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace tpr::baselines
