#include "baselines/gcn_tte.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "baselines/common.h"
#include "nn/optimizer.h"
#include "synth/traffic_model.h"
#include "util/logging.h"

namespace tpr::baselines {
namespace {

// Distributes each observed path travel time over its edges proportional
// to edge length and averages per key (edge id, or edge id + bucket).
struct EdgeTargets {
  std::vector<float> mean_time;  // per key
  std::vector<char> observed;
};

EdgeTargets BuildEdgeTargets(const core::FeatureSpace& features,
                             const std::vector<int>& train_indices,
                             int buckets_per_edge,
                             const std::function<int(int64_t)>& bucket_of) {
  const auto& data = *features.data;
  const auto& network = *data.network;
  const size_t keys =
      static_cast<size_t>(network.num_edges()) * buckets_per_edge;
  std::vector<double> sum(keys, 0.0);
  std::vector<int> count(keys, 0);
  for (int i : train_indices) {
    const auto& s = data.labeled[i];
    const double path_len = network.PathLength(s.path);
    if (path_len <= 0) continue;
    const int b = bucket_of(s.depart_time_s);
    for (int eid : s.path) {
      const double share =
          s.travel_time_s * network.edge(eid).length_m / path_len;
      const size_t key = static_cast<size_t>(eid) * buckets_per_edge + b;
      sum[key] += share;
      ++count[key];
    }
  }
  EdgeTargets t;
  t.mean_time.resize(keys, 0.0f);
  t.observed.resize(keys, 0);
  for (size_t k = 0; k < keys; ++k) {
    if (count[k] > 0) {
      t.mean_time[k] = static_cast<float>(sum[k] / count[k]);
      t.observed[k] = 1;
    }
  }
  return t;
}

// Free-flow fallback time for edges never observed in training.
float FreeFlowTime(const graph::RoadNetwork& network, int eid) {
  const auto& e = network.edge(eid);
  return static_cast<float>(e.length_m /
                            tpr::synth::BaseSpeedForType(e.road_type));
}

}  // namespace

// ---------------------------------------------------------------------------
// GCN
// ---------------------------------------------------------------------------

GcnTteModel::GcnTteModel(std::shared_ptr<const core::FeatureSpace> features,
                         Config config)
    : features_(std::move(features)), config_(config) {
  adjacency_ = LineGraphAdjacency(*features_->data->network);
  edge_features_ = AllEdgeFeatures(*features_);
  Rng rng(config.seed);
  layer1_ = std::make_unique<nn::Linear>(edge_features_.cols(),
                                         config_.hidden_dim, rng);
  layer2_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1, rng);
}

Status GcnTteModel::Train(const std::vector<int>& train_indices) {
  if (train_indices.empty()) {
    return Status::InvalidArgument("no training samples");
  }
  const auto& network = *features_->data->network;
  const auto targets = BuildEdgeTargets(*features_, train_indices, 1,
                                        [](int64_t) { return 0; });

  // Normalise targets to O(1).
  double mean = 0;
  int observed = 0;
  for (size_t k = 0; k < targets.mean_time.size(); ++k) {
    if (targets.observed[k]) {
      mean += targets.mean_time[k];
      ++observed;
    }
  }
  if (observed == 0) return Status::Internal("no observed edges");
  mean /= observed;

  std::vector<nn::Var> params = layer1_->Parameters();
  auto p2 = layer2_->Parameters();
  params.insert(params.end(), p2.begin(), p2.end());
  nn::Adam opt(params, config_.lr);

  nn::Var a = nn::Var::Leaf(adjacency_);
  nn::Var x = nn::Var::Leaf(edge_features_);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::Var h = nn::Tanh(layer1_->Forward(nn::MatMul(a, x)));
    nn::Var pred = layer2_->Forward(nn::MatMul(a, h));  // num_edges x 1

    // Masked MSE against observed normalised targets.
    nn::Tensor target(network.num_edges(), 1);
    nn::Tensor mask(network.num_edges(), 1);
    for (int e = 0; e < network.num_edges(); ++e) {
      if (targets.observed[e]) {
        target.at(e, 0) = static_cast<float>(targets.mean_time[e] / mean);
        mask.at(e, 0) = 1.0f;
      }
    }
    nn::Var diff = nn::Sub(pred, nn::Var::Leaf(target));
    nn::Var masked = nn::Mul(diff, nn::Var::Leaf(mask));
    nn::Var loss = nn::Scale(
        nn::Sum(nn::Mul(masked, masked)), 1.0f / static_cast<float>(observed));
    opt.ZeroGrad();
    loss.Backward();
    opt.ClipGradNorm(5.0f);
    opt.Step();
  }

  // Freeze predictions.
  nn::NoGradGuard no_grad;
  nn::Var h = nn::Tanh(layer1_->Forward(nn::MatMul(a, x)));
  nn::Var pred = layer2_->Forward(nn::MatMul(a, h));
  edge_times_.resize(network.num_edges());
  for (int e = 0; e < network.num_edges(); ++e) {
    const float t = static_cast<float>(pred.value().at(e, 0) * mean);
    edge_times_[e] = targets.observed[e]
                         ? std::max(1.0f, t)
                         : FreeFlowTime(network, e);
  }
  return Status::OK();
}

double GcnTteModel::PredictTravelTime(const graph::Path& path,
                                      int64_t /*depart_time_s*/) const {
  double total = 0;
  for (int eid : path) total += edge_times_[eid];
  return total;
}

// ---------------------------------------------------------------------------
// STGCN
// ---------------------------------------------------------------------------

StgcnTteModel::StgcnTteModel(
    std::shared_ptr<const core::FeatureSpace> features, Config config)
    : features_(std::move(features)), config_(config) {
  adjacency_ = LineGraphAdjacency(*features_->data->network);
  edge_features_ = AllEdgeFeatures(*features_);
  Rng rng(config.seed);
  layer1_ = std::make_unique<nn::Linear>(edge_features_.cols(),
                                         config_.hidden_dim, rng);
  layer2_ = std::make_unique<nn::Linear>(config_.hidden_dim,
                                         config_.hidden_dim, rng);
  time_emb_ = std::make_unique<nn::Embedding>(2 * config_.time_buckets, 8, rng);
  out_ = std::make_unique<nn::Linear>(config_.hidden_dim + 8, 1, rng);
}

int StgcnTteModel::BucketOf(int64_t depart_time_s) const {
  constexpr int64_t kDayS = 24 * 3600;
  int64_t t = depart_time_s % (7 * kDayS);
  if (t < 0) t += 7 * kDayS;
  const int day = static_cast<int>(t / kDayS);
  const bool weekday = day < 5;
  const int slot = static_cast<int>((t % kDayS) * config_.time_buckets / kDayS);
  return (weekday ? 0 : config_.time_buckets) + slot;
}

Status StgcnTteModel::Train(const std::vector<int>& train_indices) {
  if (train_indices.empty()) {
    return Status::InvalidArgument("no training samples");
  }
  const auto& network = *features_->data->network;
  const int num_buckets = 2 * config_.time_buckets;
  const auto targets =
      BuildEdgeTargets(*features_, train_indices, num_buckets,
                       [this](int64_t t) { return BucketOf(t); });

  double mean = 0;
  int observed = 0;
  for (size_t k = 0; k < targets.mean_time.size(); ++k) {
    if (targets.observed[k]) {
      mean += targets.mean_time[k];
      ++observed;
    }
  }
  if (observed == 0) return Status::Internal("no observed edge-buckets");
  mean /= observed;

  // Collect observed (edge, bucket) pairs once.
  std::vector<std::pair<int, int>> pairs;
  for (int e = 0; e < network.num_edges(); ++e) {
    for (int b = 0; b < num_buckets; ++b) {
      if (targets.observed[static_cast<size_t>(e) * num_buckets + b]) {
        pairs.emplace_back(e, b);
      }
    }
  }

  std::vector<nn::Var> params = layer1_->Parameters();
  for (const auto* m : {static_cast<const nn::Module*>(layer2_.get()),
                        static_cast<const nn::Module*>(time_emb_.get()),
                        static_cast<const nn::Module*>(out_.get())}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam opt(params, config_.lr);

  nn::Var a = nn::Var::Leaf(adjacency_);
  nn::Var x = nn::Var::Leaf(edge_features_);
  Rng rng(config_.seed + 9);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::Var h = nn::Tanh(layer2_->Forward(
        nn::Tanh(layer1_->Forward(nn::MatMul(a, x)))));

    // Sampled observed pairs per epoch (keeps the graph small).
    std::vector<int> edge_rows, bucket_ids;
    std::vector<float> batch_targets;
    const size_t batch = std::min<size_t>(pairs.size(), 256);
    for (size_t k = 0; k < batch; ++k) {
      const auto& [e, b] = pairs[rng.UniformInt(pairs.size())];
      edge_rows.push_back(e);
      bucket_ids.push_back(b);
      batch_targets.push_back(static_cast<float>(
          targets.mean_time[static_cast<size_t>(e) * num_buckets + b] / mean));
    }
    nn::Var h_sel = nn::Gather(h, edge_rows);
    nn::Var t_sel = time_emb_->Forward(bucket_ids);
    nn::Var pred = out_->Forward(nn::ConcatCols({h_sel, t_sel}));
    nn::Var target = nn::Var::Leaf(nn::Tensor::FromValues(
        static_cast<int>(batch), 1, std::move(batch_targets)));
    nn::Var diff = nn::Sub(pred, target);
    nn::Var loss = nn::Mean(nn::Mul(diff, diff));
    opt.ZeroGrad();
    loss.Backward();
    opt.ClipGradNorm(5.0f);
    opt.Step();
  }

  // Freeze per-(bucket, edge) predictions.
  nn::NoGradGuard no_grad;
  nn::Var h = nn::Tanh(layer2_->Forward(
      nn::Tanh(layer1_->Forward(nn::MatMul(a, x)))));
  edge_times_by_bucket_.assign(num_buckets,
                               std::vector<float>(network.num_edges()));
  std::vector<int> all_edges(network.num_edges());
  for (int e = 0; e < network.num_edges(); ++e) all_edges[e] = e;
  for (int b = 0; b < num_buckets; ++b) {
    nn::Var t_sel = time_emb_->Forward(
        std::vector<int>(network.num_edges(), b));
    nn::Var pred =
        out_->Forward(nn::ConcatCols({nn::Gather(h, all_edges), t_sel}));
    for (int e = 0; e < network.num_edges(); ++e) {
      const float t = static_cast<float>(pred.value().at(e, 0) * mean);
      const bool seen =
          targets.observed[static_cast<size_t>(e) * num_buckets + b];
      edge_times_by_bucket_[b][e] =
          seen || t > 1.0f ? std::max(1.0f, t) : FreeFlowTime(network, e);
    }
  }
  return Status::OK();
}

double StgcnTteModel::PredictTravelTime(const graph::Path& path,
                                        int64_t depart_time_s) const {
  const int b = BucketOf(depart_time_s);
  double total = 0;
  for (int eid : path) total += edge_times_by_bucket_[b][eid];
  return total;
}

std::vector<nn::Var> GcnTteModel::StateParams() const {
  std::vector<nn::Var> params = layer1_->Parameters();
  for (const auto& p : layer2_->Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::Tensor> GcnTteModel::ExtraState() const {
  return {nn::Tensor::RowVector(edge_times_)};
}

Status GcnTteModel::SetExtraState(std::vector<nn::Tensor> state) {
  if (state.size() != 1 ||
      state[0].size() != static_cast<size_t>(adjacency_.rows())) {
    return Status::FailedPrecondition(
        "GCN checkpoint must hold one travel time per edge");
  }
  edge_times_.assign(state[0].data(), state[0].data() + state[0].size());
  return Status::OK();
}

std::vector<nn::Var> StgcnTteModel::StateParams() const {
  std::vector<nn::Var> params = layer1_->Parameters();
  for (const auto& p : layer2_->Parameters()) params.push_back(p);
  for (const auto& p : time_emb_->Parameters()) params.push_back(p);
  for (const auto& p : out_->Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::Tensor> StgcnTteModel::ExtraState() const {
  const int rows = static_cast<int>(edge_times_by_bucket_.size());
  const int cols = rows == 0 ? 0 : static_cast<int>(
                                       edge_times_by_bucket_[0].size());
  nn::Tensor table(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) table.at(r, c) = edge_times_by_bucket_[r][c];
  }
  return {table};
}

Status StgcnTteModel::SetExtraState(std::vector<nn::Tensor> state) {
  if (state.size() != 1 ||
      (state[0].rows() != 0 && state[0].rows() != config_.time_buckets) ||
      (state[0].rows() != 0 && state[0].cols() != adjacency_.rows())) {
    return Status::FailedPrecondition(
        "STGCN checkpoint must hold a (buckets x edges) travel-time table");
  }
  const nn::Tensor& table = state[0];
  edge_times_by_bucket_.assign(table.rows(),
                               std::vector<float>(table.cols()));
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      edge_times_by_bucket_[r][c] = table.at(r, c);
    }
  }
  return Status::OK();
}

}  // namespace tpr::baselines
