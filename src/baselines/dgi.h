#ifndef TPR_BASELINES_DGI_H_
#define TPR_BASELINES_DGI_H_

#include <memory>

#include "baselines/baseline.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// Deep Graph Infomax (Velickovic et al., ICLR 2019), applied to the road
/// network: a one-layer GCN encoder over node features is trained to
/// discriminate true (node, graph-summary) pairs from corrupted ones.
/// The edge representation is [h_from, h_to]; a path representation is the
/// mean over its edges — no temporal information, as in the paper's DGI row.
class DgiModel : public PathRepresentationModel {
 public:
  struct Config {
    int hidden_dim = 16;
    int epochs = 40;
    float lr = 5e-3f;
    uint64_t seed = 21;
  };

  explicit DgiModel(std::shared_ptr<const core::FeatureSpace> features)
      : DgiModel(std::move(features), Config()) {}
  DgiModel(std::shared_ptr<const core::FeatureSpace> features,
      Config config);

  std::string name() const override { return "DGI"; }
  Status Train() override;
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  std::vector<nn::Var> StateParams() const override;
  std::vector<nn::Tensor> ExtraState() const override;
  Status SetExtraState(std::vector<nn::Tensor> state) override;

 protected:
  /// GCN forward over (optionally corrupted) features.
  nn::Var EncodeNodes(const nn::Var& x) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  nn::Tensor adjacency_;      // normalised node-graph adjacency
  nn::Tensor node_features_;  // node2vec embedding + degree
  std::unique_ptr<nn::Linear> gcn_weight_;
  std::unique_ptr<nn::Linear> discriminator_;
  nn::Tensor node_embeddings_;  // frozen after Train()
  Rng rng_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_DGI_H_
