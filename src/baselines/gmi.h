#ifndef TPR_BASELINES_GMI_H_
#define TPR_BASELINES_GMI_H_

#include <memory>

#include "baselines/baseline.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// Graphical Mutual Information maximisation (Peng et al., WWW 2020),
/// simplified: a GCN encoder over road-network nodes is trained to
/// maximise MI between a node's embedding and the raw features of its
/// neighbors (positive pairs = graph edges, negatives = random node
/// pairs). Like DGI, representations are purely structural.
class GmiModel : public PathRepresentationModel {
 public:
  struct Config {
    int hidden_dim = 16;
    int epochs = 40;
    int negatives_per_edge = 2;
    float lr = 5e-3f;
    uint64_t seed = 22;
  };

  explicit GmiModel(std::shared_ptr<const core::FeatureSpace> features)
      : GmiModel(std::move(features), Config()) {}
  GmiModel(std::shared_ptr<const core::FeatureSpace> features,
      Config config);

  std::string name() const override { return "GMI"; }
  Status Train() override;
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  std::vector<nn::Var> StateParams() const override;
  std::vector<nn::Tensor> ExtraState() const override;
  Status SetExtraState(std::vector<nn::Tensor> state) override;

 private:
  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  nn::Tensor adjacency_;
  nn::Tensor node_features_;
  std::unique_ptr<nn::Linear> gcn_weight_;
  std::unique_ptr<nn::Linear> feature_proj_;
  nn::Tensor node_embeddings_;
  Rng rng_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_GMI_H_
