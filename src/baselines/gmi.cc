#include "baselines/gmi.h"

#include "baselines/common.h"
#include "nn/optimizer.h"

namespace tpr::baselines {

GmiModel::GmiModel(std::shared_ptr<const core::FeatureSpace> features,
                   Config config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  const auto& network = *features_->data->network;
  adjacency_ = NodeGraphAdjacency(network);
  const int d = features_->config.road_embedding_dim;
  node_features_ = nn::Tensor(network.num_nodes(), d + 1);
  for (int v = 0; v < network.num_nodes(); ++v) {
    const auto& emb = features_->road_embeddings[v];
    float* row = node_features_.data() + static_cast<size_t>(v) * (d + 1);
    std::copy(emb.begin(), emb.end(), row);
    row[d] = static_cast<float>(network.OutEdges(v).size()) / 8.0f;
  }
  gcn_weight_ = std::make_unique<nn::Linear>(node_features_.cols(),
                                             config_.hidden_dim, rng_);
  feature_proj_ = std::make_unique<nn::Linear>(node_features_.cols(),
                                               config_.hidden_dim, rng_);
}

Status GmiModel::Train() {
  const auto& network = *features_->data->network;
  std::vector<nn::Var> params = gcn_weight_->Parameters();
  auto fp = feature_proj_->Parameters();
  params.insert(params.end(), fp.begin(), fp.end());
  nn::Adam opt(params, config_.lr);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::Var x = nn::Var::Leaf(node_features_);
    nn::Var h = nn::Tanh(
        gcn_weight_->Forward(nn::MatMul(nn::Var::Leaf(adjacency_), x)));
    nn::Var fx = feature_proj_->Forward(x);

    // Positive pairs: graph edges (h_u, fx_v). Negatives: random pairs.
    std::vector<nn::Var> losses;
    const int sample_edges = 64;
    for (int s = 0; s < sample_edges; ++s) {
      const int eid = static_cast<int>(
          rng_.UniformInt(static_cast<uint64_t>(network.num_edges())));
      const auto& e = network.edge(eid);
      nn::Var pos = nn::Dot(nn::SliceRow(h, e.from), nn::SliceRow(fx, e.to));
      losses.push_back(nn::Softplus(nn::Scale(pos, -1.0f)));
      for (int k = 0; k < config_.negatives_per_edge; ++k) {
        const int v = static_cast<int>(
            rng_.UniformInt(static_cast<uint64_t>(network.num_nodes())));
        nn::Var neg = nn::Dot(nn::SliceRow(h, e.from), nn::SliceRow(fx, v));
        losses.push_back(nn::Softplus(neg));
      }
    }
    nn::Var loss = nn::Mean(nn::ConcatCols(losses));
    opt.ZeroGrad();
    loss.Backward();
    opt.ClipGradNorm(5.0f);
    opt.Step();
  }

  nn::NoGradGuard no_grad;
  nn::Var h = nn::Tanh(gcn_weight_->Forward(
      nn::MatMul(nn::Var::Leaf(adjacency_), nn::Var::Leaf(node_features_))));
  node_embeddings_ = h.value();
  return Status::OK();
}

std::vector<float> GmiModel::Encode(
    const synth::TemporalPathSample& sample) const {
  const auto& network = *features_->data->network;
  const int d = node_embeddings_.cols();
  std::vector<float> rep(2 * d, 0.0f);
  for (int eid : sample.path) {
    const auto& e = network.edge(eid);
    for (int i = 0; i < d; ++i) {
      rep[i] += node_embeddings_.at(e.from, i);
      rep[d + i] += node_embeddings_.at(e.to, i);
    }
  }
  const float inv = 1.0f / static_cast<float>(sample.path.size());
  for (auto& v : rep) v *= inv;
  return rep;
}

std::vector<nn::Var> GmiModel::StateParams() const {
  std::vector<nn::Var> params = gcn_weight_->Parameters();
  for (const auto& p : feature_proj_->Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::Tensor> GmiModel::ExtraState() const {
  return {node_embeddings_};
}

Status GmiModel::SetExtraState(std::vector<nn::Tensor> state) {
  if (state.size() != 1) {
    return Status::FailedPrecondition(
        "GMI checkpoint must hold exactly the node-embedding table");
  }
  if (!state[0].empty() && state[0].rows() != adjacency_.rows()) {
    return Status::FailedPrecondition(
        "GMI node-embedding table does not match the road network");
  }
  node_embeddings_ = std::move(state[0]);
  return Status::OK();
}

}  // namespace tpr::baselines
