#include "baselines/memory_bank.h"

#include <numeric>

#include "baselines/common.h"
#include "nn/optimizer.h"

namespace tpr::baselines {

MemoryBankModel::MemoryBankModel(
    std::shared_ptr<const core::FeatureSpace> features, Config config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  Rng init_rng(config.seed);
  lstm_ = std::make_unique<nn::Lstm>(EdgeFeatureDim(*features_),
                                     config_.hidden_dim, 1, init_rng);
}

nn::Var MemoryBankModel::EncodePath(const graph::Path& path) const {
  const int dim = EdgeFeatureDim(*features_);
  nn::Tensor x(static_cast<int>(path.size()), dim);
  for (size_t i = 0; i < path.size(); ++i) {
    const auto f = EdgeFeatureVector(*features_, path[i]);
    std::copy(f.begin(), f.end(), x.data() + i * dim);
  }
  return nn::RowMean(lstm_->Forward(nn::Var::Leaf(std::move(x))));
}

Status MemoryBankModel::Train() {
  const auto& pool = features_->data->unlabeled;
  if (pool.empty()) return Status::InvalidArgument("empty unlabeled pool");
  nn::Adam opt(lstm_->Parameters(), config_.lr);

  // Initialise the bank with the untrained encoder's outputs.
  bank_.resize(pool.size());
  {
    nn::NoGradGuard no_grad;
    for (size_t i = 0; i < pool.size(); ++i) {
      nn::Var rep = EncodePath(pool[i].path);
      bank_[i].assign(rep.value().data(),
                      rep.value().data() + rep.value().size());
    }
  }

  std::vector<int> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    for (int idx : order) {
      nn::Var query = EncodePath(pool[idx].path);
      nn::Var pos = nn::Scale(
          nn::CosineSim(query,
                        nn::Var::Leaf(nn::Tensor::RowVector(bank_[idx]))),
          1.0f / config_.temperature);
      std::vector<nn::Var> all_sims = {pos};
      for (int k = 0; k < config_.negatives; ++k) {
        const int j = static_cast<int>(rng_.UniformInt(pool.size()));
        if (j == idx) continue;
        all_sims.push_back(nn::Scale(
            nn::CosineSim(query,
                          nn::Var::Leaf(nn::Tensor::RowVector(bank_[j]))),
            1.0f / config_.temperature));
      }
      // InfoNCE: -log softmax(pos | all).
      nn::Var loss = nn::Sub(nn::LogSumExp(nn::ConcatCols(all_sims)), pos);
      opt.ZeroGrad();
      loss.Backward();
      opt.ClipGradNorm(5.0f);
      opt.Step();

      // Momentum bank update.
      {
        nn::NoGradGuard no_grad;
        nn::Var fresh = EncodePath(pool[idx].path);
        for (size_t d = 0; d < bank_[idx].size(); ++d) {
          bank_[idx][d] = config_.momentum * bank_[idx][d] +
                          (1.0f - config_.momentum) * fresh.value()[d];
        }
      }
    }
  }
  return Status::OK();
}

std::vector<float> MemoryBankModel::Encode(
    const synth::TemporalPathSample& sample) const {
  nn::NoGradGuard no_grad;
  nn::Var rep = EncodePath(sample.path);
  return std::vector<float>(rep.value().data(),
                            rep.value().data() + rep.value().size());
}

std::vector<nn::Var> MemoryBankModel::StateParams() const {
  return lstm_->Parameters();
}

std::vector<nn::Tensor> MemoryBankModel::ExtraState() const {
  const int rows = static_cast<int>(bank_.size());
  const int cols = bank_.empty() ? 0 : static_cast<int>(bank_[0].size());
  nn::Tensor bank(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) bank.at(r, c) = bank_[r][c];
  }
  return {bank};
}

Status MemoryBankModel::SetExtraState(std::vector<nn::Tensor> state) {
  if (state.size() != 1) {
    return Status::FailedPrecondition(
        "MB checkpoint must hold exactly the memory bank");
  }
  const nn::Tensor& bank = state[0];
  bank_.assign(bank.rows(), std::vector<float>(bank.cols()));
  for (int r = 0; r < bank.rows(); ++r) {
    for (int c = 0; c < bank.cols(); ++c) bank_[r][c] = bank.at(r, c);
  }
  return Status::OK();
}

}  // namespace tpr::baselines
