#include "baselines/node2vec_path.h"

namespace tpr::baselines {

std::vector<float> Node2vecPathModel::Encode(
    const synth::TemporalPathSample& sample) const {
  const auto& network = *features_->data->network;
  const int d = features_->config.road_embedding_dim;
  std::vector<float> rep(2 * d, 0.0f);
  for (int eid : sample.path) {
    const auto& e = network.edge(eid);
    const auto& from_vec = features_->road_embeddings[e.from];
    const auto& to_vec = features_->road_embeddings[e.to];
    for (int i = 0; i < d; ++i) {
      rep[i] += from_vec[i];
      rep[d + i] += to_vec[i];
    }
  }
  const float inv = 1.0f / static_cast<float>(sample.path.size());
  for (auto& v : rep) v *= inv;
  return rep;
}

}  // namespace tpr::baselines
