#include "baselines/baseline.h"

namespace tpr::baselines {
namespace {

constexpr char kBaselineTag[] = "baseline";
constexpr uint32_t kBaselineVersion = 1;

}  // namespace

Status SaveBaseline(const BaselineState& model, ckpt::Writer& w) {
  w.Str(kBaselineTag);
  w.U32(kBaselineVersion);
  w.Str(model.name());
  ckpt::WriteParamValues(w, model.StateParams());
  ckpt::WriteTensorList(w, model.ExtraState());
  const std::vector<double> scalars = model.ExtraScalars();
  w.U32(static_cast<uint32_t>(scalars.size()));
  for (double v : scalars) w.F64(v);
  return Status::OK();
}

Status LoadBaseline(BaselineState& model, ckpt::Reader& r) {
  std::string tag;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kBaselineTag) {
    return Status::FailedPrecondition("not a baseline checkpoint: " + tag);
  }
  uint32_t version = 0;
  TPR_RETURN_IF_ERROR(r.U32(&version));
  if (version != kBaselineVersion) {
    return Status::FailedPrecondition(
        "unsupported baseline checkpoint version " + std::to_string(version));
  }
  std::string name;
  TPR_RETURN_IF_ERROR(r.Str(&name));
  if (name != model.name()) {
    return Status::FailedPrecondition("checkpoint holds a " + name +
                                      " model, expected " + model.name());
  }
  TPR_RETURN_IF_ERROR(ckpt::ReadParamValuesInto(r, model.StateParams()));
  std::vector<nn::Tensor> extra;
  TPR_RETURN_IF_ERROR(ckpt::ReadTensorList(r, &extra));
  TPR_RETURN_IF_ERROR(model.SetExtraState(std::move(extra)));
  uint32_t num_scalars = 0;
  TPR_RETURN_IF_ERROR(r.U32(&num_scalars));
  if (num_scalars > 1024) {
    return Status::OutOfRange("implausible baseline scalar count");
  }
  std::vector<double> scalars(num_scalars);
  for (double& v : scalars) TPR_RETURN_IF_ERROR(r.F64(&v));
  return model.SetExtraScalars(scalars);
}

}  // namespace tpr::baselines
