#ifndef TPR_BASELINES_INFOGRAPH_H_
#define TPR_BASELINES_INFOGRAPH_H_

#include <memory>

#include "baselines/baseline.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// InfoGraph (Sun et al., ICLR 2020): each path is treated as a small
/// graph; an MLP produces per-edge (local) representations whose mean is
/// the path's global representation. Training maximises the Jensen-Shannon
/// MI between local and global representations of the same path while
/// suppressing cross-path pairs. Purely spatial — it cannot capture edge
/// order or departure time, as the paper notes.
class InfoGraphModel : public PathRepresentationModel {
 public:
  struct Config {
    int hidden_dim = 32;
    int epochs = 3;
    int batch_paths = 8;
    int locals_per_path = 4;
    float lr = 1e-3f;
    uint64_t seed = 25;
  };

  explicit InfoGraphModel(std::shared_ptr<const core::FeatureSpace> features)
      : InfoGraphModel(std::move(features), Config()) {}
  InfoGraphModel(std::shared_ptr<const core::FeatureSpace> features,
      Config config);

  std::string name() const override { return "InfoGraph"; }
  Status Train() override;
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  std::vector<nn::Var> StateParams() const override;

 private:
  nn::Var LocalReps(const graph::Path& path) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  std::unique_ptr<nn::Mlp> local_encoder_;
  std::unique_ptr<nn::Linear> global_proj_;
  Rng rng_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_INFOGRAPH_H_
