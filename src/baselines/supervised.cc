#include "baselines/supervised.h"

#include <algorithm>
#include <cmath>

#include "nn/grad_accumulator.h"
#include "nn/optimizer.h"
#include "par/thread_pool.h"
#include "util/logging.h"

namespace tpr::baselines {

SupervisedBase::SupervisedBase(
    std::shared_ptr<const core::FeatureSpace> features,
    std::vector<int> train_indices, SupervisedConfig config)
    : features_(std::move(features)),
      train_indices_(std::move(train_indices)),
      config_(config),
      rng_(config.seed) {
  encoder_ = std::make_unique<core::TemporalPathEncoder>(features_,
                                                         config_.encoder);
}

double SupervisedBase::RawTarget(
    const synth::TemporalPathSample& sample) const {
  return config_.primary == SupervisedTask::kTravelTime ? sample.travel_time_s
                                                        : sample.rank_score;
}

float SupervisedBase::NormalizedTarget(
    const synth::TemporalPathSample& sample) const {
  return static_cast<float>((RawTarget(sample) - target_mean_) / target_std_);
}

double SupervisedBase::Denormalize(double value) const {
  return value * target_std_ + target_mean_;
}

Status SupervisedBase::InitEncoderFrom(
    const core::TemporalPathEncoder& pretrained) {
  return encoder_->CopyParamsFrom(pretrained);
}

Status SupervisedBase::Train() {
  if (train_indices_.empty()) {
    return Status::InvalidArgument("no supervised training samples");
  }
  const auto& labeled = features_->data->labeled;

  // Fit the target normalisation on the training split.
  double sum = 0, sum2 = 0;
  for (int i : train_indices_) {
    const double t = RawTarget(labeled[i]);
    sum += t;
    sum2 += t * t;
  }
  target_mean_ = sum / train_indices_.size();
  target_std_ = std::sqrt(
      std::max(1e-6, sum2 / train_indices_.size() - target_mean_ * target_mean_));

  std::vector<nn::Var> params = encoder_->Parameters();
  auto hp = HeadParameters();
  params.insert(params.end(), hp.begin(), hp.end());
  nn::Adam opt(params, config_.lr);
  nn::GradAccumulator accumulator(params);

  // One model replica per worker thread, lazily built, values re-synced
  // from the master parameters once per minibatch. Sharding a batch into
  // per-shard Sum losses reduced with 1/items reproduces the old
  // Mean-loss gradient exactly, in fixed shard order, so training is
  // bitwise identical for any thread count.
  struct Replica {
    std::unique_ptr<SupervisedBase> model;
    std::vector<nn::Var> params;
    uint64_t synced_step = 0;
  };
  par::ThreadPool& tp = par::DefaultPool();
  std::vector<Replica> replicas(tp.num_threads());
  uint64_t step = 0;

  std::vector<int> order = train_indices_;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    for (size_t start = 0; start < order.size(); start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + config_.batch_size);
      const int items = static_cast<int>(end - start);
      if (items == 0) continue;
      const int num_shards = std::min(4, items);
      ++step;
      accumulator.BeginBatch(num_shards);

      tp.ParallelFor(num_shards, [&](int s) {
        Replica& replica = replicas[par::WorkerIndex()];
        if (replica.model == nullptr) {
          replica.model = MakeReplica();
          replica.params = replica.model->encoder_->Parameters();
          auto rhp = replica.model->HeadParameters();
          replica.params.insert(replica.params.end(), rhp.begin(), rhp.end());
        }
        replica.model->target_mean_ = target_mean_;
        replica.model->target_std_ = target_std_;
        if (replica.synced_step != step) {
          nn::CopyParamValues(accumulator.params(), replica.params);
          replica.synced_step = step;
        }
        const size_t lo = start + static_cast<size_t>(items) * s / num_shards;
        const size_t hi =
            start + static_cast<size_t>(items) * (s + 1) / num_shards;
        std::vector<nn::Var> losses;
        losses.reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          const auto& sample = labeled[order[i]];
          const auto encoded = replica.model->encoder_->Encode(
              sample.path, sample.depart_time_s);
          losses.push_back(replica.model->SampleLoss(encoded.tpr, sample));
        }
        nn::Var loss = nn::Sum(nn::ConcatCols(losses));
        loss.Backward();
        accumulator.CaptureShard(s, replica.params);
      });

      opt.ZeroGrad();
      accumulator.Reduce(1.0f / static_cast<float>(items));
      opt.ClipGradNorm(config_.grad_clip);
      opt.Step();
    }
  }
  return Status::OK();
}

std::vector<float> SupervisedBase::Encode(
    const synth::TemporalPathSample& sample) const {
  return encoder_->EncodeValue(sample.path, sample.depart_time_s);
}

double SupervisedBase::PredictPrimary(
    const synth::TemporalPathSample& sample) const {
  nn::NoGradGuard no_grad;
  const auto encoded = encoder_->Encode(sample.path, sample.depart_time_s);
  return Denormalize(HeadPredict(encoded.tpr));
}

// ---------------------------------------------------------------------------
// PathRank
// ---------------------------------------------------------------------------

PathRankModel::PathRankModel(
    std::shared_ptr<const core::FeatureSpace> features,
    std::vector<int> train_indices, SupervisedConfig config)
    : SupervisedBase(std::move(features), std::move(train_indices), config) {
  Rng head_rng(config.seed + 1);
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.encoder.d_hidden, config.encoder.d_hidden, 1},
      head_rng);
}

nn::Var PathRankModel::SampleLoss(const nn::Var& tpr,
                                  const synth::TemporalPathSample& sample) {
  nn::Var pred = head_->Forward(tpr);
  return nn::MseLoss(pred,
                     nn::Tensor::RowVector({NormalizedTarget(sample)}));
}

double PathRankModel::HeadPredict(const nn::Var& tpr) const {
  return head_->Forward(tpr).scalar();
}

std::vector<nn::Var> PathRankModel::HeadParameters() const {
  return head_->Parameters();
}

std::unique_ptr<SupervisedBase> PathRankModel::MakeReplica() const {
  return std::make_unique<PathRankModel>(features_, std::vector<int>{},
                                         config_);
}

// ---------------------------------------------------------------------------
// HMTRL
// ---------------------------------------------------------------------------

HmtrlModel::HmtrlModel(std::shared_ptr<const core::FeatureSpace> features,
                       std::vector<int> train_indices,
                       SupervisedConfig config)
    : SupervisedBase(std::move(features), std::move(train_indices), config) {
  Rng head_rng(config.seed + 2);
  time_head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.encoder.d_hidden, config.encoder.d_hidden, 1},
      head_rng);
  rank_head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.encoder.d_hidden, config.encoder.d_hidden, 1},
      head_rng);
}

nn::Var HmtrlModel::SampleLoss(const nn::Var& tpr,
                               const synth::TemporalPathSample& sample) {
  // Multi-task: the primary task in normalised space plus the auxiliary
  // ranking/time signal (ranking scores are already O(1)).
  const bool time_primary = config_.primary == SupervisedTask::kTravelTime;
  const float time_target =
      time_primary ? NormalizedTarget(sample)
                   : static_cast<float>((sample.travel_time_s - target_mean_) /
                                        target_std_);
  const float rank_target = static_cast<float>(sample.rank_score);

  nn::Var time_loss = nn::MseLoss(time_head_->Forward(tpr),
                                  nn::Tensor::RowVector({time_target}));
  nn::Var rank_loss = nn::MseLoss(rank_head_->Forward(tpr),
                                  nn::Tensor::RowVector({rank_target}));
  // When ranking is primary, the time target's normalisation constants
  // were fit on ranking scores, so damp the auxiliary term.
  const float aux_weight = 0.3f;
  if (time_primary) {
    return nn::Add(time_loss, nn::Scale(rank_loss, aux_weight));
  }
  return nn::Add(rank_loss, nn::Scale(time_loss, aux_weight * 0.01f));
}

double HmtrlModel::HeadPredict(const nn::Var& tpr) const {
  if (config_.primary == SupervisedTask::kTravelTime) {
    return time_head_->Forward(tpr).scalar();
  }
  // Rank head predicts in raw [0,1] space; invert the base
  // denormalisation so PredictPrimary returns the raw value.
  const double raw = rank_head_->Forward(tpr).scalar();
  return (raw - target_mean_) / target_std_;
}

std::vector<nn::Var> HmtrlModel::HeadParameters() const {
  auto p = time_head_->Parameters();
  auto r = rank_head_->Parameters();
  p.insert(p.end(), r.begin(), r.end());
  return p;
}

std::unique_ptr<SupervisedBase> HmtrlModel::MakeReplica() const {
  return std::make_unique<HmtrlModel>(features_, std::vector<int>{}, config_);
}

// ---------------------------------------------------------------------------
// DeepGTT
// ---------------------------------------------------------------------------

DeepGttModel::DeepGttModel(std::shared_ptr<const core::FeatureSpace> features,
                           std::vector<int> train_indices,
                           SupervisedConfig config)
    : SupervisedBase(std::move(features), std::move(train_indices), config) {
  Rng head_rng(config.seed + 3);
  mu_head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.encoder.d_hidden, config.encoder.d_hidden, 1},
      head_rng);
  lambda_head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.encoder.d_hidden, config.encoder.d_hidden, 1},
      head_rng);
}

nn::Var DeepGttModel::SampleLoss(const nn::Var& tpr,
                                 const synth::TemporalPathSample& sample) {
  // Inverse-Gaussian negative log-likelihood of the scale-normalised
  // target x (positive by construction):
  //   -ll = -0.5 log(lambda) + lambda (x - mu)^2 / (2 mu^2 x) + const.
  const float x = static_cast<float>(
      std::max(1e-3, RawTarget(sample) / std::max(1e-9, target_mean_)));
  nn::Var mu = nn::AddScalar(nn::Softplus(mu_head_->Forward(tpr)), 1e-3f);
  nn::Var lambda =
      nn::AddScalar(nn::Softplus(lambda_head_->Forward(tpr)), 1e-3f);
  nn::Var diff = nn::AddScalar(nn::Scale(mu, -1.0f), x);  // x - mu
  nn::Var penalty = nn::Div(nn::Mul(lambda, nn::Mul(diff, diff)),
                            nn::Scale(nn::Mul(mu, mu), 2.0f * x));
  return nn::Sub(penalty, nn::Scale(nn::Log(lambda), 0.5f));
}

double DeepGttModel::HeadPredict(const nn::Var& tpr) const {
  // The IG mean is mu (in x-normalised units).
  nn::Var mu = nn::AddScalar(nn::Softplus(mu_head_->Forward(tpr)), 1e-3f);
  return mu.scalar();
}

double DeepGttModel::Denormalize(double value) const {
  return value * target_mean_;  // scale-only normalisation
}

std::vector<nn::Var> DeepGttModel::HeadParameters() const {
  auto p = mu_head_->Parameters();
  auto l = lambda_head_->Parameters();
  p.insert(p.end(), l.begin(), l.end());
  return p;
}

std::unique_ptr<SupervisedBase> DeepGttModel::MakeReplica() const {
  return std::make_unique<DeepGttModel>(features_, std::vector<int>{},
                                        config_);
}

std::vector<nn::Var> SupervisedBase::StateParams() const {
  std::vector<nn::Var> params = encoder_->Parameters();
  for (const auto& p : HeadParameters()) params.push_back(p);
  return params;
}

std::vector<double> SupervisedBase::ExtraScalars() const {
  return {target_mean_, target_std_};
}

Status SupervisedBase::SetExtraScalars(const std::vector<double>& scalars) {
  if (scalars.size() != 2) {
    return Status::FailedPrecondition(
        name() + " checkpoint must hold the {mean, std} target normalisation");
  }
  target_mean_ = scalars[0];
  target_std_ = scalars[1];
  return Status::OK();
}

}  // namespace tpr::baselines
