#ifndef TPR_BASELINES_BERT_PATH_H_
#define TPR_BASELINES_BERT_PATH_H_

#include <memory>

#include "baselines/baseline.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// BERT-style masked language modelling on paths: a path is a sentence of
/// edge tokens; random positions are replaced by a mask token and a GRU
/// encoder is trained to recover the original edge id (via negative
/// sampling instead of a full softmax). The path representation is the
/// mean of the unmasked hidden states. Matches the paper's BERT row in
/// spirit; the transformer is replaced by a recurrent encoder at this
/// scale.
class BertPathModel : public PathRepresentationModel {
 public:
  struct Config {
    int embed_dim = 16;
    int hidden_dim = 32;
    int epochs = 2;
    double mask_fraction = 0.2;
    int negatives = 6;
    float lr = 1e-3f;
    uint64_t seed = 24;
  };

  explicit BertPathModel(std::shared_ptr<const core::FeatureSpace> features)
      : BertPathModel(std::move(features), Config()) {}
  BertPathModel(std::shared_ptr<const core::FeatureSpace> features,
      Config config);

  std::string name() const override { return "BERT"; }
  Status Train() override;
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  std::vector<nn::Var> StateParams() const override;

 private:
  /// GRU states for a path with some positions replaced by the mask token.
  nn::Var HiddenStates(const graph::Path& path,
                       const std::vector<bool>& masked) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  int mask_token_;
  std::unique_ptr<nn::Embedding> token_emb_;   // edges + mask token
  std::unique_ptr<nn::Embedding> output_emb_;  // target-side table
  std::unique_ptr<nn::GruLayer> gru_;
  std::unique_ptr<nn::Linear> out_proj_;  // hidden -> embedding space
  Rng rng_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_BERT_PATH_H_
