#ifndef TPR_BASELINES_MEMORY_BANK_H_
#define TPR_BASELINES_MEMORY_BANK_H_

#include <memory>

#include "baselines/baseline.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// Memory-bank instance discrimination (Wu et al., CVPR 2018),
/// re-implemented with an LSTM path encoder as in the paper: every
/// unlabeled path is its own class; its representation is contrasted via
/// NCE against negative representations drawn from a momentum-updated
/// memory bank. No temporal channel and no weak labels.
class MemoryBankModel : public PathRepresentationModel {
 public:
  struct Config {
    int hidden_dim = 32;
    int epochs = 2;
    int negatives = 8;
    float temperature = 0.1f;
    float momentum = 0.5f;
    float lr = 1e-3f;
    uint64_t seed = 23;
  };

  explicit MemoryBankModel(std::shared_ptr<const core::FeatureSpace> features)
      : MemoryBankModel(std::move(features), Config()) {}
  MemoryBankModel(std::shared_ptr<const core::FeatureSpace> features,
      Config config);

  std::string name() const override { return "MB"; }
  Status Train() override;
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  std::vector<nn::Var> StateParams() const override;
  std::vector<nn::Tensor> ExtraState() const override;
  Status SetExtraState(std::vector<nn::Tensor> state) override;

 private:
  nn::Var EncodePath(const graph::Path& path) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  std::unique_ptr<nn::Lstm> lstm_;
  std::vector<std::vector<float>> bank_;
  Rng rng_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_MEMORY_BANK_H_
