#ifndef TPR_BASELINES_NODE2VEC_PATH_H_
#define TPR_BASELINES_NODE2VEC_PATH_H_

#include "baselines/baseline.h"

namespace tpr::baselines {

/// Node2vec baseline: the representation of an edge is the concatenation
/// of its endpoint node2vec embeddings; the path representation is the
/// mean over its edges. Purely topological — no temporal information —
/// matching the paper's Node2vec row.
class Node2vecPathModel : public PathRepresentationModel {
 public:
  explicit Node2vecPathModel(std::shared_ptr<const core::FeatureSpace> features)
      : features_(std::move(features)) {}

  std::string name() const override { return "Node2vec"; }

  Status Train() override { return Status::OK(); }  // embeddings precomputed

  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

 private:
  std::shared_ptr<const core::FeatureSpace> features_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_NODE2VEC_PATH_H_
