#ifndef TPR_BASELINES_SUPERVISED_H_
#define TPR_BASELINES_SUPERVISED_H_

#include <memory>

#include "baselines/baseline.h"
#include "core/encoder.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// Primary task a supervised model is trained on (Table X uses the
/// primary/secondary distinction; Table III trains on the evaluated task).
enum class SupervisedTask {
  kTravelTime,
  kRanking,
};

/// Shared configuration of the supervised baselines.
struct SupervisedConfig {
  core::EncoderConfig encoder;
  SupervisedTask primary = SupervisedTask::kTravelTime;
  int epochs = 6;
  int batch_size = 16;
  float lr = 1e-3f;
  float grad_clip = 5.0f;
  uint64_t seed = 41;
};

/// Base class for the supervised path-representation baselines: a
/// temporal path encoder (shared architecture with WSCCL so pre-trained
/// weights are transplantable, cf. Fig. 7) plus task heads trained on
/// strong labels from the labeled training split.
class SupervisedBase : public PathRepresentationModel {
 public:
  SupervisedBase(std::shared_ptr<const core::FeatureSpace> features,
                 std::vector<int> train_indices, SupervisedConfig config);

  Status Train() override;

  /// The frozen encoder representation (used by downstream probes).
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  /// Prediction of the primary task by the model's own head (Fig. 7
  /// evaluates the supervised model directly, without a probe).
  double PredictPrimary(const synth::TemporalPathSample& sample) const;

  /// Transplants a pre-trained temporal path encoder (Fig. 7).
  Status InitEncoderFrom(const core::TemporalPathEncoder& pretrained);

  /// Replaces the labeled training subset (used by the label-budget sweep).
  void set_train_indices(std::vector<int> indices) {
    train_indices_ = std::move(indices);
  }

  /// Encoder + head parameters, plus the fitted target normalisation as
  /// extra scalars, so a checkpointed supervised model predicts exactly.
  std::vector<nn::Var> StateParams() const override;
  std::vector<double> ExtraScalars() const override;
  Status SetExtraScalars(const std::vector<double>& scalars) override;

 protected:
  /// Loss of one sample given its encoder TPR; subclasses define heads.
  virtual nn::Var SampleLoss(const nn::Var& tpr,
                             const synth::TemporalPathSample& sample) = 0;

  /// Fresh instance of the same model (same features/config). Train()
  /// keeps one replica per worker thread so minibatch shards can build
  /// independent autograd graphs; replica parameter values are re-synced
  /// from the master before each batch, so the construction seed is
  /// irrelevant.
  virtual std::unique_ptr<SupervisedBase> MakeReplica() const = 0;

  /// Raw head prediction in normalised space.
  virtual double HeadPredict(const nn::Var& tpr) const = 0;

  /// Parameters of the task heads.
  virtual std::vector<nn::Var> HeadParameters() const = 0;

  /// Primary-task raw target of a sample.
  double RawTarget(const synth::TemporalPathSample& sample) const;

  /// Primary-task target of a sample, in normalised space.
  float NormalizedTarget(const synth::TemporalPathSample& sample) const;

  /// Maps a normalised head output back to target units. DeepGTT uses a
  /// scale-only normalisation to keep targets positive.
  virtual double Denormalize(double value) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  std::vector<int> train_indices_;
  SupervisedConfig config_;
  std::unique_ptr<core::TemporalPathEncoder> encoder_;
  Rng rng_;
  // Target normalisation (fit on the training split).
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
};

/// PathRank (Yang et al., TKDE 2020): a supervised recurrent path encoder
/// with departure-time context and a regression head for its primary task.
class PathRankModel : public SupervisedBase {
 public:
  PathRankModel(std::shared_ptr<const core::FeatureSpace> features,
                std::vector<int> train_indices, SupervisedConfig config);

  std::string name() const override { return "PathRank"; }

 protected:
  nn::Var SampleLoss(const nn::Var& tpr,
                     const synth::TemporalPathSample& sample) override;
  double HeadPredict(const nn::Var& tpr) const override;
  std::vector<nn::Var> HeadParameters() const override;
  std::unique_ptr<SupervisedBase> MakeReplica() const override;

 private:
  std::unique_ptr<nn::Mlp> head_;
};

/// HMTRL (Liu et al., VLDB 2020): multi-task route representation
/// learning — the encoder is trained jointly on travel time and ranking
/// heads; the primary task decides which head PredictPrimary uses.
class HmtrlModel : public SupervisedBase {
 public:
  HmtrlModel(std::shared_ptr<const core::FeatureSpace> features,
             std::vector<int> train_indices, SupervisedConfig config);

  std::string name() const override { return "HMTRL"; }

 protected:
  nn::Var SampleLoss(const nn::Var& tpr,
                     const synth::TemporalPathSample& sample) override;
  double HeadPredict(const nn::Var& tpr) const override;
  std::vector<nn::Var> HeadParameters() const override;
  std::unique_ptr<SupervisedBase> MakeReplica() const override;

 private:
  std::unique_ptr<nn::Mlp> time_head_;
  std::unique_ptr<nn::Mlp> rank_head_;
};

/// DeepGTT (Li et al., WWW 2019): deep generative travel-time model — the
/// head outputs the (mu, lambda) parameters of an inverse-Gaussian
/// distribution trained by maximum likelihood on the primary target.
class DeepGttModel : public SupervisedBase {
 public:
  DeepGttModel(std::shared_ptr<const core::FeatureSpace> features,
               std::vector<int> train_indices, SupervisedConfig config);

  std::string name() const override { return "DeepGTT"; }

 protected:
  nn::Var SampleLoss(const nn::Var& tpr,
                     const synth::TemporalPathSample& sample) override;
  double HeadPredict(const nn::Var& tpr) const override;
  double Denormalize(double value) const override;
  std::vector<nn::Var> HeadParameters() const override;
  std::unique_ptr<SupervisedBase> MakeReplica() const override;

 private:
  std::unique_ptr<nn::Mlp> mu_head_;
  std::unique_ptr<nn::Mlp> lambda_head_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_SUPERVISED_H_
