#ifndef TPR_BASELINES_GCN_TTE_H_
#define TPR_BASELINES_GCN_TTE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/features.h"
#include "nn/modules.h"
#include "util/status.h"

namespace tpr::baselines {

/// Common interface for the edge-level travel-time baselines GCN and
/// STGCN. These cannot produce generic path representations (paper:
/// "GCNs and STGCNs cannot work as baselines for the ranking and
/// recommendation tasks") — they only predict a path's travel time as the
/// sum of predicted edge travel times.
class EdgeTravelTimePredictor : public BaselineState {
 public:
  /// Trains on the labeled training split. Per-edge targets are derived
  /// from path observations by distributing each path's travel time over
  /// its edges proportionally to edge length.
  virtual Status Train(const std::vector<int>& train_indices) = 0;

  /// Predicted travel time (seconds) of a path at the given departure.
  virtual double PredictTravelTime(const graph::Path& path,
                                   int64_t depart_time_s) const = 0;
};

/// GCN (Defferrard et al., NIPS 2016) over the road network's line graph:
/// two graph-convolution layers over edge features regress a static
/// per-edge travel time. Time-of-day is ignored entirely.
class GcnTteModel : public EdgeTravelTimePredictor {
 public:
  struct Config {
    int hidden_dim = 32;
    int epochs = 120;
    float lr = 5e-3f;
    uint64_t seed = 51;
  };

  explicit GcnTteModel(std::shared_ptr<const core::FeatureSpace> features)
      : GcnTteModel(std::move(features), Config()) {}
  GcnTteModel(std::shared_ptr<const core::FeatureSpace> features,
              Config config);

  std::string name() const override { return "GCN"; }
  Status Train(const std::vector<int>& train_indices) override;
  double PredictTravelTime(const graph::Path& path,
                           int64_t depart_time_s) const override;

  std::vector<nn::Var> StateParams() const override;
  std::vector<nn::Tensor> ExtraState() const override;
  Status SetExtraState(std::vector<nn::Tensor> state) override;

 private:
  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  nn::Tensor adjacency_;       // line-graph adjacency
  nn::Tensor edge_features_;
  std::unique_ptr<nn::Linear> layer1_;
  std::unique_ptr<nn::Linear> layer2_;
  std::vector<float> edge_times_;  // frozen predictions after Train()
};

/// STGCN (Yu et al., IJCAI 2018) analogue: graph convolution over the
/// line graph combined with a time-slot channel, so predicted edge times
/// depend on the departure time bucket.
class StgcnTteModel : public EdgeTravelTimePredictor {
 public:
  struct Config {
    int hidden_dim = 32;
    int time_buckets = 48;  // half-hour buckets over the day, weekday/weekend
    int epochs = 120;
    float lr = 5e-3f;
    uint64_t seed = 52;
  };

  explicit StgcnTteModel(std::shared_ptr<const core::FeatureSpace> features)
      : StgcnTteModel(std::move(features), Config()) {}
  StgcnTteModel(std::shared_ptr<const core::FeatureSpace> features,
                Config config);

  std::string name() const override { return "STGCN"; }
  Status Train(const std::vector<int>& train_indices) override;
  double PredictTravelTime(const graph::Path& path,
                           int64_t depart_time_s) const override;

  std::vector<nn::Var> StateParams() const override;
  std::vector<nn::Tensor> ExtraState() const override;
  Status SetExtraState(std::vector<nn::Tensor> state) override;

 private:
  int BucketOf(int64_t depart_time_s) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  nn::Tensor adjacency_;
  nn::Tensor edge_features_;
  std::unique_ptr<nn::Linear> layer1_;
  std::unique_ptr<nn::Linear> layer2_;
  std::unique_ptr<nn::Embedding> time_emb_;
  std::unique_ptr<nn::Linear> out_;
  // Frozen per-(bucket, edge) predictions after Train().
  std::vector<std::vector<float>> edge_times_by_bucket_;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_GCN_TTE_H_
