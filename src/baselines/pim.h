#ifndef TPR_BASELINES_PIM_H_
#define TPR_BASELINES_PIM_H_

#include <memory>

#include "baselines/baseline.h"
#include "nn/modules.h"

namespace tpr::baselines {

/// PIM (Yang et al., IJCAI 2021): unsupervised path representation
/// learning via global and local mutual-information maximisation with
/// curriculum negative sampling. Exactly one positive per anchor (an
/// edge-dropout view of the same path); negatives are drawn from other
/// paths, ordered easy-to-hard by length dissimilarity as training
/// progresses. No temporal information.
class PimModel : public PathRepresentationModel {
 public:
  struct Config {
    int hidden_dim = 32;
    int epochs = 2;
    int negatives = 4;
    double edge_dropout = 0.15;
    float temperature = 0.1f;
    float lr = 1e-3f;
    uint64_t seed = 26;
  };

  explicit PimModel(std::shared_ptr<const core::FeatureSpace> features)
      : PimModel(std::move(features), Config()) {}
  PimModel(std::shared_ptr<const core::FeatureSpace> features,
      Config config);

  std::string name() const override { return "PIM"; }
  Status Train() override;
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;

  std::vector<nn::Var> StateParams() const override;

 protected:
  /// (T x hidden) local edge representations of a path.
  nn::Var LocalReps(const graph::Path& path) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  Config config_;
  std::unique_ptr<nn::Lstm> lstm_;
  Rng rng_;
};

/// PIM-Temporal (Table IX): the PIM representation concatenated with the
/// node2vec temporal embedding of the departure time. The temporal part
/// is appended post hoc and never interacts with the path structure —
/// exactly the deficiency the experiment demonstrates.
class PimTemporalModel : public PimModel {
 public:
  using PimModel::PimModel;

  std::string name() const override { return "PIM-Temporal"; }
  std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const override;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_PIM_H_
