#ifndef TPR_BASELINES_BASELINE_H_
#define TPR_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/serialize.h"
#include "core/features.h"
#include "nn/autograd.h"
#include "synth/dataset.h"
#include "util/status.h"

namespace tpr::baselines {

/// Checkpointable-state interface shared by every baseline model —
/// both the path-representation methods and the edge-level travel-time
/// predictors. SaveBaseline/LoadBaseline round-trip a trained model
/// through these accessors.
class BaselineState {
 public:
  virtual ~BaselineState() = default;

  /// Human-readable method name as printed in the result tables.
  virtual std::string name() const = 0;

  /// Trained parameter tensors that define the model's state, as shared
  /// Var handles in a fixed order. Empty for models with nothing
  /// trainable (e.g. Node2vec, whose embeddings live in the feature
  /// space).
  virtual std::vector<nn::Var> StateParams() const { return {}; }

  /// Non-parameter trained state — memory banks, frozen embedding
  /// matrices, normalisation constants — as value tensors in a fixed
  /// order matching SetExtraState().
  virtual std::vector<nn::Tensor> ExtraState() const { return {}; }

  /// Restores state produced by ExtraState(). The default (for models
  /// without extra state) accepts only an empty list.
  virtual Status SetExtraState(std::vector<nn::Tensor> state) {
    if (!state.empty()) {
      return Status::FailedPrecondition(name() +
                                        " checkpoint has unexpected state");
    }
    return Status::OK();
  }

  /// Double-precision trained scalars (e.g. target normalisation) that
  /// would lose bits if forced through the float32 tensor channel.
  virtual std::vector<double> ExtraScalars() const { return {}; }

  /// Restores scalars produced by ExtraScalars().
  virtual Status SetExtraScalars(const std::vector<double>& scalars) {
    if (!scalars.empty()) {
      return Status::FailedPrecondition(name() +
                                        " checkpoint has unexpected scalars");
    }
    return Status::OK();
  }
};

/// Common interface for all comparison methods of Section VII-A-3. Each
/// model is trained on its required signal (unlabeled paths for the
/// unsupervised ones, a labeled primary task for the supervised ones) and
/// then produces frozen path representations for the downstream probes.
class PathRepresentationModel : public BaselineState {
 public:
  /// Trains the model. Unsupervised methods use data.unlabeled; supervised
  /// ones use the training portion of data.labeled.
  virtual Status Train() = 0;

  /// Frozen representation of a temporal path.
  virtual std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const = 0;
};

/// Serializes a trained baseline's state (name tag + parameter values +
/// extra state) through its State accessors.
Status SaveBaseline(const BaselineState& model, ckpt::Writer& w);

/// Restores state written by SaveBaseline into a model of the same
/// method and architecture. Name or shape mismatches are a
/// FailedPrecondition; the model is untouched on tag/name errors.
Status LoadBaseline(BaselineState& model, ckpt::Reader& r);

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_BASELINE_H_
