#ifndef TPR_BASELINES_BASELINE_H_
#define TPR_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/features.h"
#include "synth/dataset.h"
#include "util/status.h"

namespace tpr::baselines {

/// Common interface for all comparison methods of Section VII-A-3. Each
/// model is trained on its required signal (unlabeled paths for the
/// unsupervised ones, a labeled primary task for the supervised ones) and
/// then produces frozen path representations for the downstream probes.
class PathRepresentationModel {
 public:
  virtual ~PathRepresentationModel() = default;

  /// Human-readable method name as printed in the result tables.
  virtual std::string name() const = 0;

  /// Trains the model. Unsupervised methods use data.unlabeled; supervised
  /// ones use the training portion of data.labeled.
  virtual Status Train() = 0;

  /// Frozen representation of a temporal path.
  virtual std::vector<float> Encode(
      const synth::TemporalPathSample& sample) const = 0;
};

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_BASELINE_H_
