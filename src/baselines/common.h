#ifndef TPR_BASELINES_COMMON_H_
#define TPR_BASELINES_COMMON_H_

#include <vector>

#include "core/features.h"
#include "nn/autograd.h"

namespace tpr::baselines {

/// Raw spatial feature vector of a road edge, shared by the MLP/GCN-style
/// baselines: one-hot road type (5) + normalised lanes + one-way flag +
/// signal flag + normalised length + node2vec topology [from, to].
std::vector<float> EdgeFeatureVector(const core::FeatureSpace& features,
                                     int edge_id);

/// Dimensionality of EdgeFeatureVector for a feature space.
int EdgeFeatureDim(const core::FeatureSpace& features);

/// Feature matrix (num_edges x dim) of every edge in the network.
nn::Tensor AllEdgeFeatures(const core::FeatureSpace& features);

/// Dense symmetric-normalised adjacency (with self loops) of the
/// road-network line graph: edges are vertices, connected when they share
/// an endpoint head-to-tail. Used by the GCN-style baselines.
nn::Tensor LineGraphAdjacency(const graph::RoadNetwork& network);

/// Dense symmetric-normalised adjacency (with self loops) of the road
/// network's node graph.
nn::Tensor NodeGraphAdjacency(const graph::RoadNetwork& network);

/// Mean of selected rows of a (n x d) value tensor.
std::vector<float> MeanRows(const nn::Tensor& matrix,
                            const std::vector<int>& rows);

}  // namespace tpr::baselines

#endif  // TPR_BASELINES_COMMON_H_
