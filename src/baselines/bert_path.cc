#include "baselines/bert_path.h"

#include <numeric>

#include "nn/optimizer.h"

namespace tpr::baselines {

BertPathModel::BertPathModel(
    std::shared_ptr<const core::FeatureSpace> features, Config config)
    : features_(std::move(features)), config_(config), rng_(config.seed) {
  const int num_edges = features_->data->network->num_edges();
  mask_token_ = num_edges;
  Rng init_rng(config.seed);
  token_emb_ = std::make_unique<nn::Embedding>(num_edges + 1,
                                               config_.embed_dim, init_rng);
  output_emb_ = std::make_unique<nn::Embedding>(num_edges, config_.embed_dim,
                                                init_rng);
  gru_ = std::make_unique<nn::GruLayer>(config_.embed_dim,
                                        config_.hidden_dim, init_rng);
  out_proj_ = std::make_unique<nn::Linear>(config_.hidden_dim,
                                           config_.embed_dim, init_rng);
}

nn::Var BertPathModel::HiddenStates(const graph::Path& path,
                                    const std::vector<bool>& masked) const {
  std::vector<int> tokens(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    tokens[i] = (i < masked.size() && masked[i]) ? mask_token_
                                                 : path[i];
  }
  return gru_->Forward(token_emb_->Forward(tokens));
}

Status BertPathModel::Train() {
  const auto& pool = features_->data->unlabeled;
  if (pool.empty()) return Status::InvalidArgument("empty unlabeled pool");
  const int num_edges = features_->data->network->num_edges();

  std::vector<nn::Var> params = token_emb_->Parameters();
  for (const auto* m : {static_cast<const nn::Module*>(output_emb_.get()),
                        static_cast<const nn::Module*>(gru_.get()),
                        static_cast<const nn::Module*>(out_proj_.get())}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam opt(params, config_.lr);

  std::vector<int> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    for (int idx : order) {
      const auto& path = pool[idx].path;
      if (path.size() < 3) continue;
      std::vector<bool> masked(path.size(), false);
      int num_masked = 0;
      for (size_t i = 0; i < path.size(); ++i) {
        if (rng_.Bernoulli(config_.mask_fraction)) {
          masked[i] = true;
          ++num_masked;
        }
      }
      if (num_masked == 0) {
        masked[rng_.UniformInt(path.size())] = true;
        num_masked = 1;
      }

      nn::Var h = HiddenStates(path, masked);
      std::vector<nn::Var> losses;
      for (size_t i = 0; i < path.size(); ++i) {
        if (!masked[i]) continue;
        nn::Var h_i =
            out_proj_->Forward(nn::SliceRow(h, static_cast<int>(i)));
        nn::Var pos_emb = output_emb_->Forward({path[i]});
        losses.push_back(
            nn::Softplus(nn::Scale(nn::Dot(h_i, pos_emb), -1.0f)));
        for (int k = 0; k < config_.negatives; ++k) {
          const int neg = static_cast<int>(
              rng_.UniformInt(static_cast<uint64_t>(num_edges)));
          if (neg == path[i]) continue;
          nn::Var neg_emb = output_emb_->Forward({neg});
          losses.push_back(nn::Softplus(nn::Dot(h_i, neg_emb)));
        }
      }
      if (losses.empty()) continue;
      nn::Var loss = nn::Mean(nn::ConcatCols(losses));
      opt.ZeroGrad();
      loss.Backward();
      opt.ClipGradNorm(5.0f);
      opt.Step();
    }
  }
  return Status::OK();
}

std::vector<float> BertPathModel::Encode(
    const synth::TemporalPathSample& sample) const {
  nn::NoGradGuard no_grad;
  nn::Var h = HiddenStates(sample.path, {});
  nn::Var rep = nn::RowMean(h);
  return std::vector<float>(rep.value().data(),
                            rep.value().data() + rep.value().size());
}

std::vector<nn::Var> BertPathModel::StateParams() const {
  std::vector<nn::Var> params = token_emb_->Parameters();
  for (const auto& p : output_emb_->Parameters()) params.push_back(p);
  for (const auto& p : gru_->Parameters()) params.push_back(p);
  for (const auto& p : out_proj_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace tpr::baselines
