#ifndef TPR_CKPT_CHECKPOINT_H_
#define TPR_CKPT_CHECKPOINT_H_

// Crash-safe checkpoint files.
//
// Envelope layout (little-endian):
//
//   offset size  field
//   0      4     magic "TPRC"
//   4      4     format version (currently 1)
//   8      8     payload length in bytes
//   16     n     payload (opaque to this layer)
//   16+n   4     CRC-32 over bytes [0, 16+n)
//
// Files are written with write-to-temp + fsync + atomic-rename + parent
// directory fsync, so a crash at ANY byte of the write sequence leaves
// either the previous file intact or the new file complete — never a
// torn visible checkpoint. The CRC footer additionally catches torn or
// bit-flipped files that bypass the rename protocol (e.g. a copied
// checkpoint truncated in transit): UnwrapPayload refuses them with a
// Status instead of returning corrupt state.
//
// CheckpointDir layers rotation on top: sequence-numbered files with the
// last two generations retained, and LoadLatest falling back to the
// previous generation when the newest file fails validation.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tpr::ckpt {

inline constexpr uint32_t kMagic = 0x43525054u;  // "TPRC" little-endian
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 16;
inline constexpr size_t kFooterBytes = 4;

/// Wraps an opaque payload in the versioned magic + length + CRC
/// envelope described above.
std::string WrapPayload(std::string_view payload);

/// Validates the envelope (magic, version, length, CRC) and returns the
/// payload. Any inconsistency — truncation, bit flips, a newer format
/// version — is a Status, never a crash or silently corrupt bytes.
StatusOr<std::string> UnwrapPayload(std::string_view bytes);

/// Durably writes `bytes` to `path`: write to a uniquely-named
/// `<path>.tmp.<pid>.<n>` temp, fsync, rename over `path`, fsync the
/// parent directory. A crash anywhere in the sequence leaves the
/// previous `path` contents intact, and the unique temp name makes
/// concurrent writers of the same path safe — the last rename wins
/// whole, never a byte-interleaved mix (fleet shards and controllers
/// publish concurrently in one process).
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file. NotFound when it does not exist.
StatusOr<std::string> ReadFileBytes(const std::string& path);

/// Test-only crash simulator for AtomicWriteFile. The injector is
/// called once per write with the total byte count and returns how many
/// bytes to actually write before the simulated kill:
///   - k <  size: the temp file is left torn at k bytes, no rename
///     happens, and AtomicWriteFile returns Internal.
///   - k == size: the temp file is complete and fsynced but the process
///     "dies" before the rename (returns Internal).
///   - k >  size: no fault; the write completes normally.
/// Pass nullptr to uninstall. Forwards to
/// fault::SetCkptWriteKillPoint — the hook now lives in tpr::fault,
/// alongside the plan-driven "ckpt-write" (whole-write refusal) and
/// "ckpt-read" (ReadFileBytes failure) sites driven by TPR_FAULT.
void SetWriteFaultInjector(std::function<size_t(size_t size)> injector);

/// A directory of rotating, sequence-numbered checkpoint files
/// (`ckpt-<seq>.tpr`). Concurrent writers are not supported; one
/// training process owns a directory.
class CheckpointDir {
 public:
  explicit CheckpointDir(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Wraps `payload` in the envelope and atomically writes it as
  /// sequence `seq` (monotonically increasing, e.g. the global epoch).
  /// On success prunes all but the newest `keep` generations — the
  /// previous generation is retained so a fault during the NEXT save
  /// can always fall back — while the pinned sequence (see Pin) is
  /// never pruned regardless of age. Records ckpt.save_seconds /
  /// ckpt.saved_bytes via tpr::obs when metrics are enabled.
  Status Save(uint64_t seq, std::string_view payload, int keep = 2);

  /// Retention pin: durably marks `seq` (typically the live serving
  /// generation) as exempt from Save's keep-last-K pruning. One pin per
  /// directory; pinning replaces the previous pin. The marker is a
  /// CRC-enveloped `PINNED` file written with the atomic protocol, so
  /// it survives crashes and is honoured by every CheckpointDir
  /// instance opened on the directory — publishers and the rollout
  /// controller need not share an object.
  Status Pin(uint64_t seq) const;

  /// Removes the pin marker (no-op when none exists).
  Status Unpin() const;

  /// The pinned sequence, or nullopt when no valid marker exists (a
  /// corrupt marker reads as no pin and is counted via
  /// ckpt.pin_invalid).
  std::optional<uint64_t> PinnedSeq() const;

  struct Loaded {
    uint64_t seq = 0;
    std::string payload;
  };

  /// Returns the newest checkpoint that passes envelope validation,
  /// skipping (and counting via ckpt.load_fallbacks) corrupt or torn
  /// newer files. NotFound when the directory holds no valid
  /// checkpoint — the caller starts fresh; corrupt state is never
  /// returned. A file whose *content* fails envelope validation (torn
  /// bytes, CRC mismatch) is moved to the `quarantine/` subdirectory so
  /// a flapping disk cannot make every future load re-scan the same bad
  /// files; read errors (including injected ckpt-read faults) are
  /// treated as transient and leave the file in place.
  StatusOr<Loaded> LoadLatest() const;

  /// Every checkpoint sequence number present in the directory, in
  /// ascending order (quarantined files excluded). Empty when the
  /// directory does not exist. Consumers that promote generations one at
  /// a time (tpr::rollout) scan with this instead of LoadLatest.
  std::vector<uint64_t> ListSeqs() const;

  /// Moves the checkpoint file for `seq` into the `quarantine/`
  /// subdirectory, creating it on demand. Used for files whose content
  /// failed validation: they are preserved for post-mortem but never
  /// offered by ListSeqs/LoadLatest again.
  Status Quarantine(uint64_t seq) const;

  /// Path of the checkpoint file for a sequence number.
  std::string PathFor(uint64_t seq) const;

 private:
  std::string dir_;
};

}  // namespace tpr::ckpt

#endif  // TPR_CKPT_CHECKPOINT_H_
