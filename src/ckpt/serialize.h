#ifndef TPR_CKPT_SERIALIZE_H_
#define TPR_CKPT_SERIALIZE_H_

// Low-level binary serialization for checkpoints: an append-only byte
// Writer, a bounds-checked Reader, and helpers for the repo's state
// types (tensors, parameter lists, Adam moments, RNG streams).
//
// The format is little-endian and versioned at the envelope level (see
// checkpoint.h); these primitives never change meaning within a version.
// Every Reader method returns a Status instead of asserting, so a torn
// or corrupt byte stream is always reported to the caller and can never
// crash the loader.

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace tpr::ckpt {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range. Used as
/// the checkpoint envelope footer so torn or bit-flipped files are
/// detected before any state is deserialized.
uint32_t Crc32(const void* data, size_t n);

/// Running CRC update for incremental computation (init with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

/// Append-only little-endian byte sink.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void I64(int64_t v) { Raw(&v, sizeof v); }
  void F32(float v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Bytes(const void* data, size_t n) { Raw(data, n); }

  const std::string& bytes() const { return buf_; }
  std::string TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian byte source over a borrowed buffer. All
/// reads fail with Status::OutOfRange past the end — truncation is a
/// reported error, never undefined behaviour.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status U8(uint8_t* v) { return Raw(v, sizeof *v); }
  Status U32(uint32_t* v) { return Raw(v, sizeof *v); }
  Status U64(uint64_t* v) { return Raw(v, sizeof *v); }
  Status I32(int32_t* v) { return Raw(v, sizeof *v); }
  Status I64(int64_t* v) { return Raw(v, sizeof *v); }
  Status F32(float* v) { return Raw(v, sizeof *v); }
  Status F64(double* v) { return Raw(v, sizeof *v); }
  Status Str(std::string* s);
  Status Bytes(void* out, size_t n) { return Raw(out, n); }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Raw(void* out, size_t n) {
    if (n > remaining()) {
      return Status::OutOfRange("checkpoint stream truncated");
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// State-type helpers. Write* always succeeds; Read* validates shapes and
// sizes against sane bounds before allocating.
// ---------------------------------------------------------------------------

void WriteTensor(Writer& w, const nn::Tensor& t);
Status ReadTensor(Reader& r, nn::Tensor* out);

/// Parameter values of a module, in Parameters() order.
void WriteParamValues(Writer& w, const std::vector<nn::Var>& params);

/// Restores parameter values in place. The serialized list must match
/// `params` in count and per-tensor shape (a different architecture or
/// config is a FailedPrecondition, not a crash).
Status ReadParamValuesInto(Reader& r, const std::vector<nn::Var>& params);

void WriteTensorList(Writer& w, const std::vector<nn::Tensor>& tensors);
Status ReadTensorList(Reader& r, std::vector<nn::Tensor>* out);

void WriteRng(Writer& w, const Rng& rng);
Status ReadRng(Reader& r, Rng* rng);

void WriteAdamState(Writer& w, const nn::Adam& adam);
Status ReadAdamStateInto(Reader& r, nn::Adam* adam);

}  // namespace tpr::ckpt

#endif  // TPR_CKPT_SERIALIZE_H_
