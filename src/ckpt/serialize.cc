#include "ckpt/serialize.h"

#include <limits>

namespace tpr::ckpt {
namespace {

// Serialized tensors larger than this are rejected by the reader before
// allocation. Far above any model in this repo (the full paper-scale
// encoder is < 1M scalars); its only job is to keep a corrupt size field
// from triggering a multi-gigabyte allocation.
constexpr uint64_t kMaxTensorElements = 64ull * 1024 * 1024;
constexpr uint64_t kMaxListEntries = 1ull * 1024 * 1024;

const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  const uint32_t* table = CrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t n) {
  return Crc32Update(0, data, n);
}

Status Reader::Str(std::string* s) {
  uint64_t len = 0;
  TPR_RETURN_IF_ERROR(U64(&len));
  if (len > remaining()) {
    return Status::OutOfRange("checkpoint string length exceeds stream");
  }
  s->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

void WriteTensor(Writer& w, const nn::Tensor& t) {
  w.I32(t.rows());
  w.I32(t.cols());
  w.Bytes(t.data(), t.size() * sizeof(float));
}

Status ReadTensor(Reader& r, nn::Tensor* out) {
  int32_t rows = 0, cols = 0;
  TPR_RETURN_IF_ERROR(r.I32(&rows));
  TPR_RETURN_IF_ERROR(r.I32(&cols));
  if (rows < 0 || cols < 0) {
    return Status::OutOfRange("checkpoint tensor has negative shape");
  }
  const uint64_t n = static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
  if (n > kMaxTensorElements || n * sizeof(float) > r.remaining()) {
    return Status::OutOfRange("checkpoint tensor size exceeds stream");
  }
  nn::Tensor t(rows, cols);
  TPR_RETURN_IF_ERROR(
      r.Bytes(t.data(), static_cast<size_t>(n) * sizeof(float)));
  *out = std::move(t);
  return Status::OK();
}

void WriteParamValues(Writer& w, const std::vector<nn::Var>& params) {
  w.U32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) WriteTensor(w, p.value());
}

Status ReadParamValuesInto(Reader& r, const std::vector<nn::Var>& params) {
  uint32_t count = 0;
  TPR_RETURN_IF_ERROR(r.U32(&count));
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "checkpoint parameter count mismatch: stored " +
        std::to_string(count) + ", model has " +
        std::to_string(params.size()));
  }
  for (const auto& p : params) {
    nn::Tensor t;
    TPR_RETURN_IF_ERROR(ReadTensor(r, &t));
    if (!t.SameShape(p.value())) {
      return Status::FailedPrecondition(
          "checkpoint parameter shape mismatch: stored " +
          std::to_string(t.rows()) + "x" + std::to_string(t.cols()) +
          ", model expects " + std::to_string(p.value().rows()) + "x" +
          std::to_string(p.value().cols()));
    }
    const_cast<nn::Var&>(p).mutable_value() = std::move(t);
  }
  return Status::OK();
}

void WriteTensorList(Writer& w, const std::vector<nn::Tensor>& tensors) {
  w.U32(static_cast<uint32_t>(tensors.size()));
  for (const auto& t : tensors) WriteTensor(w, t);
}

Status ReadTensorList(Reader& r, std::vector<nn::Tensor>* out) {
  uint32_t count = 0;
  TPR_RETURN_IF_ERROR(r.U32(&count));
  if (count > kMaxListEntries) {
    return Status::OutOfRange("checkpoint tensor list too long");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    nn::Tensor t;
    TPR_RETURN_IF_ERROR(ReadTensor(r, &t));
    out->push_back(std::move(t));
  }
  return Status::OK();
}

void WriteRng(Writer& w, const Rng& rng) {
  for (uint64_t word : rng.Serialize()) w.U64(word);
}

Status ReadRng(Reader& r, Rng* rng) {
  std::array<uint64_t, 4> state{};
  for (auto& word : state) TPR_RETURN_IF_ERROR(r.U64(&word));
  rng->Restore(state);
  return Status::OK();
}

void WriteAdamState(Writer& w, const nn::Adam& adam) {
  const nn::AdamState state = adam.ExportState();
  w.I32(state.t);
  WriteTensorList(w, state.m);
  WriteTensorList(w, state.v);
}

Status ReadAdamStateInto(Reader& r, nn::Adam* adam) {
  nn::AdamState state;
  TPR_RETURN_IF_ERROR(r.I32(&state.t));
  TPR_RETURN_IF_ERROR(ReadTensorList(r, &state.m));
  TPR_RETURN_IF_ERROR(ReadTensorList(r, &state.v));
  return adam->ImportState(std::move(state));
}

}  // namespace tpr::ckpt
