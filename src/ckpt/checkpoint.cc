#include "ckpt/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "ckpt/serialize.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace tpr::ckpt {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " failed for " + path + ": " +
                          std::strerror(errno));
}

/// fsyncs a directory so a preceding rename inside it is durable.
Status SyncDir(const std::filesystem::path& dir) {
  const std::string d = dir.empty() ? "." : dir.string();
  const int fd = ::open(d.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open(dir)", d);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync(dir)", d);
  return Status::OK();
}

constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".tpr";
constexpr char kPinFileName[] = "PINNED";

/// Parses "ckpt-<seq>.tpr"; returns false for unrelated files.
bool ParseSeq(const std::string& filename, uint64_t* seq) {
  const size_t prefix = sizeof(kFilePrefix) - 1;
  const size_t suffix = sizeof(kFileSuffix) - 1;
  if (filename.size() <= prefix + suffix) return false;
  if (filename.compare(0, prefix, kFilePrefix) != 0) return false;
  if (filename.compare(filename.size() - suffix, suffix, kFileSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix; i < filename.size() - suffix; ++i) {
    if (filename[i] < '0' || filename[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(filename[i] - '0');
  }
  *seq = value;
  return true;
}

/// All checkpoint sequence numbers present in `dir`, newest first.
std::vector<uint64_t> ListSeqsDescending(const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (ParseSeq(entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

}  // namespace

std::string WrapPayload(std::string_view payload) {
  Writer w;
  w.U32(kMagic);
  w.U32(kFormatVersion);
  w.U64(payload.size());
  w.Bytes(payload.data(), payload.size());
  const uint32_t crc = Crc32(w.bytes().data(), w.bytes().size());
  w.U32(crc);
  return w.TakeBytes();
}

StatusOr<std::string> UnwrapPayload(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    return Status::OutOfRange("checkpoint shorter than envelope");
  }
  Reader r(bytes);
  uint32_t magic = 0, version = 0;
  uint64_t length = 0;
  TPR_RETURN_IF_ERROR(r.U32(&magic));
  TPR_RETURN_IF_ERROR(r.U32(&version));
  TPR_RETURN_IF_ERROR(r.U64(&length));
  if (magic != kMagic) {
    return Status::FailedPrecondition("not a TPR checkpoint (bad magic)");
  }
  if (version == 0 || version > kFormatVersion) {
    return Status::FailedPrecondition(
        "unsupported checkpoint format version " + std::to_string(version));
  }
  if (length != bytes.size() - kHeaderBytes - kFooterBytes) {
    return Status::OutOfRange("checkpoint length field mismatch (torn file)");
  }
  const uint32_t expected =
      Crc32(bytes.data(), bytes.size() - kFooterBytes);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - kFooterBytes,
              sizeof stored);
  if (stored != expected) {
    return Status::FailedPrecondition("checkpoint CRC mismatch (corrupt)");
  }
  return std::string(bytes.substr(kHeaderBytes, length));
}

void SetWriteFaultInjector(std::function<size_t(size_t size)> injector) {
  fault::SetCkptWriteKillPoint(std::move(injector));
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  // Coarse plan-driven failure: the whole write is refused up front, as
  // if the disk were full or read-only. The byte-granular kill point
  // below simulates mid-write crashes instead.
  if (fault::ShouldFail(fault::kCkptWrite)) {
    return Status::Internal("injected ckpt-write fault for " + path);
  }
  // The temp name is unique per process AND per in-flight write: with
  // the fixed "<path>.tmp" of PR 3, two writers targeting the same path
  // concurrently (fleet shards publishing, a rollout controller racing a
  // drift publish in one process, or two processes sharing a registry)
  // could interleave open/write/rename on one temp file and rename a
  // half-written mix into place. Unique temps keep the last rename
  // atomic and the loser's bytes harmless; stale temps from crashes are
  // ignored by ParseSeq/ListSeqs like any foreign file.
  static std::atomic<uint64_t> write_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(write_counter.fetch_add(1, std::memory_order_relaxed));
  size_t to_write = bytes.size();
  bool die_before_rename = false;
  if (const auto& injector = fault::CkptWriteKillPoint()) {
    const size_t kill = injector(bytes.size());
    if (kill < bytes.size()) {
      to_write = kill;
    } else if (kill == bytes.size()) {
      die_before_rename = true;
    }
  }

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t written = 0;
  while (written < to_write) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (to_write < bytes.size()) {
    // Simulated kill mid-write: the torn temp file stays on disk, the
    // destination is untouched — exactly what a real crash leaves.
    ::close(fd);
    return Status::Internal("injected crash during checkpoint write");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync", tmp);
  }
  if (::close(fd) != 0) return Errno("close", tmp);
  if (die_before_rename) {
    return Status::Internal("injected crash before checkpoint rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", path);
  }
  return SyncDir(std::filesystem::path(path).parent_path());
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  // Injected read failure: reported exactly like an I/O error, so
  // CheckpointDir::LoadLatest exercises its corrupt/unreadable-generation
  // fallback and tpr::serve its keep-serving-the-old-model path.
  if (fault::ShouldFail(fault::kCkptRead)) {
    return Status::Internal("injected ckpt-read fault for " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read error on " + path);
  return bytes;
}

std::string CheckpointDir::PathFor(uint64_t seq) const {
  char name[48];
  std::snprintf(name, sizeof name, "%s%020llu%s", kFilePrefix,
                static_cast<unsigned long long>(seq), kFileSuffix);
  return dir_ + "/" + name;
}

std::vector<uint64_t> CheckpointDir::ListSeqs() const {
  std::vector<uint64_t> seqs = ListSeqsDescending(dir_);
  std::reverse(seqs.begin(), seqs.end());
  return seqs;
}

Status CheckpointDir::Quarantine(uint64_t seq) const {
  const std::string qdir = dir_ + "/quarantine";
  std::error_code ec;
  std::filesystem::create_directories(qdir, ec);
  if (ec) {
    return Status::Internal("cannot create " + qdir + ": " + ec.message());
  }
  const std::string src = PathFor(seq);
  const std::string dst =
      qdir + "/" + std::filesystem::path(src).filename().string();
  std::filesystem::rename(src, dst, ec);
  if (ec) {
    // Two instances over one directory (per-shard controllers sharing a
    // registry, rollout racing drift) may quarantine the same
    // generation; the loser finds the source gone and the destination
    // present — the outcome it wanted.
    std::error_code probe;
    if (!std::filesystem::exists(src, probe) &&
        std::filesystem::exists(dst, probe)) {
      return Status::OK();
    }
    return Status::Internal("cannot quarantine " + src + ": " + ec.message());
  }
  obs::GetCounter("ckpt.quarantined").Add(1);
  return Status::OK();
}

Status CheckpointDir::Save(uint64_t seq, std::string_view payload, int keep) {
  Stopwatch sw;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint dir " + dir_ + ": " +
                            ec.message());
  }
  const std::string bytes = WrapPayload(payload);
  TPR_RETURN_IF_ERROR(AtomicWriteFile(PathFor(seq), bytes));
  if (obs::MetricsEnabled()) {
    obs::GetHistogram("ckpt.save_seconds").Observe(sw.ElapsedSeconds());
    obs::GetCounter("ckpt.saved_bytes").Add(bytes.size());
    obs::GetCounter("ckpt.saves").Add(1);
  }
  // Prune old generations only after the new one is durable, always
  // retaining `keep` so the next (possibly crashing) save has a valid
  // predecessor to fall back to. The pinned sequence — the live serving
  // generation during frequent incremental fine-tunes — survives
  // regardless of its position in the rotation.
  const std::optional<uint64_t> pinned = PinnedSeq();
  const std::vector<uint64_t> seqs = ListSeqsDescending(dir_);
  for (size_t i = 0; i < seqs.size(); ++i) {
    if (i < static_cast<size_t>(std::max(1, keep))) continue;
    if (pinned.has_value() && seqs[i] == *pinned) continue;
    std::filesystem::remove(PathFor(seqs[i]), ec);
  }
  return Status::OK();
}

Status CheckpointDir::Pin(uint64_t seq) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint dir " + dir_ + ": " +
                            ec.message());
  }
  Writer w;
  w.U64(seq);
  return AtomicWriteFile(dir_ + "/" + kPinFileName, WrapPayload(w.bytes()));
}

Status CheckpointDir::Unpin() const {
  std::error_code ec;
  std::filesystem::remove(dir_ + "/" + kPinFileName, ec);
  if (ec) {
    return Status::Internal("cannot remove pin marker in " + dir_ + ": " +
                            ec.message());
  }
  return Status::OK();
}

std::optional<uint64_t> CheckpointDir::PinnedSeq() const {
  // Deliberately NOT ReadFileBytes: Save consults the pin on every
  // rotation, and the marker read must not advance the ckpt-read fault
  // site's call counter under checkpoint-content fault plans.
  std::FILE* f = std::fopen((dir_ + "/" + kPinFileName).c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string bytes;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (!bad) {
    auto payload = UnwrapPayload(bytes);
    uint64_t seq = 0;
    if (payload.ok()) {
      Reader r(*payload);
      if (r.U64(&seq).ok() && r.AtEnd()) return seq;
    }
  }
  // A corrupt marker must never silently disable retention pruning or
  // pin a garbage sequence: read it as "no pin" and count it.
  obs::GetCounter("ckpt.pin_invalid").Add(1);
  return std::nullopt;
}

StatusOr<CheckpointDir::Loaded> CheckpointDir::LoadLatest() const {
  Stopwatch sw;
  for (uint64_t seq : ListSeqsDescending(dir_)) {
    auto bytes = ReadFileBytes(PathFor(seq));
    if (bytes.ok()) {
      auto payload = UnwrapPayload(*bytes);
      if (payload.ok()) {
        if (obs::MetricsEnabled()) {
          obs::GetHistogram("ckpt.load_seconds")
              .Observe(sw.ElapsedSeconds());
          obs::GetCounter("ckpt.loads").Add(1);
        }
        return Loaded{seq, *std::move(payload)};
      }
      // The file's *content* is bad (torn or bit-flipped past the rename
      // protocol): move it aside so the next load does not re-read it.
      // Best effort — a failed move degrades to the old skip behaviour.
      (void)Quarantine(seq);
    }
    // Torn, corrupt, or unreadable generation: fall back to the
    // previous one. Read errors (a flaky disk, an injected ckpt-read
    // fault) are transient and do NOT quarantine the file.
    obs::GetCounter("ckpt.load_fallbacks").Add(1);
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

}  // namespace tpr::ckpt
