#ifndef TPR_SYNTH_FLEET_H_
#define TPR_SYNTH_FLEET_H_

// Multi-city fleets for sharded serving.
//
// A CityFleet materializes N differently-parameterised synthetic cities
// from one fleet seed. Every city's parameters — network topology
// knobs, traffic model, dataset sizes, and its regime-shift schedule —
// are a pure function of (fleet seed, city id):
//
//   * bitwise reproducible: the same (seed, id) always yields the same
//     CityPreset and therefore the same network/dataset bytes;
//   * independent of fleet size: city 0 of a 1-city fleet is identical
//     to city 0 of a 16-city fleet, so shard-scaling benchmarks compare
//     like with like;
//   * distinct across ids: each city draws its base preset and
//     perturbations from an Rng seeded with MixSeed(seed, id), so no
//     two shards serve the same world.
//
// The regime-shift schedule gives each city its own drift story (what
// kind of shift arrives, how severe, with which edge-selection seed) so
// fleet soaks can bomb one shard's world while the others stay still.

#include <cstdint>
#include <string>
#include <vector>

#include "synth/presets.h"
#include "synth/regime.h"
#include "util/status.h"

namespace tpr::synth {

struct FleetConfig {
  /// Number of cities (= serving shards). TPR_SHARDS overrides.
  int num_cities = 3;

  /// Fleet master seed; every per-city stream derives from it.
  uint64_t seed = 404;

  /// Dataset scale factor applied to every city (see ScaleDataset);
  /// benches use small fractions to trade fidelity for runtime.
  double dataset_scale = 1.0;
};

/// Overlays TPR_SHARDS / TPR_FLEET_SEED / TPR_FLEET_SCALE onto
/// `defaults`. Invalid or missing values keep the default.
FleetConfig FleetConfigFromEnv(FleetConfig defaults);

/// One city of the fleet: a fully specified preset plus the city's own
/// drift schedule.
struct FleetCity {
  int city_id = 0;

  /// "city<k>-<base>", e.g. "city2-Chengdu": unique per id, stable
  /// across runs and fleet sizes.
  std::string name;

  /// Fully parameterised city (network + traffic + dataset knobs). All
  /// seeds inside are derived from (fleet seed, city id).
  CityPreset preset;

  /// The city's regime-shift schedule, in arrival order. Soaks apply
  /// entry k when they want the k-th drift event for this city.
  std::vector<RegimeShiftConfig> shifts;
};

/// Pure derivation of city `city_id` from `seed`/`dataset_scale`.
/// Deliberately does NOT read FleetConfig::num_cities: a city's
/// parameters never depend on how many siblings it has.
FleetCity MakeFleetCity(uint64_t seed, double dataset_scale, int city_id);

class CityFleet {
 public:
  explicit CityFleet(const FleetConfig& config);

  int size() const { return static_cast<int>(cities_.size()); }
  const FleetCity& city(int city_id) const;
  const std::vector<FleetCity>& cities() const { return cities_; }

  /// Generates network + traffic + dataset for one city. Each call
  /// regenerates from the preset, so the result is bitwise identical
  /// across calls, runs, and fleet sizes.
  StatusOr<CityDataset> BuildDataset(int city_id) const;

 private:
  std::vector<FleetCity> cities_;
};

}  // namespace tpr::synth

#endif  // TPR_SYNTH_FLEET_H_
