#include "synth/dataset.h"

#include <cmath>

#include "graph/path_utils.h"
#include "graph/shortest_path.h"
#include "par/thread_pool.h"
#include "util/logging.h"

namespace tpr::synth {
namespace {

constexpr int64_t kDayS = 24 * 3600;

// Draws origin/destination nodes, optionally concentrated around hubs.
class OdSampler {
 public:
  OdSampler(const graph::RoadNetwork& network, const DatasetConfig& config,
            Rng& rng)
      : network_(network), config_(config) {
    if (config.num_hubs <= 0) return;
    // Pick hub intersections and precompute their jitter neighborhoods.
    for (int h = 0; h < config.num_hubs; ++h) {
      const int hub = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(network.num_nodes())));
      std::vector<int> near;
      for (int v = 0; v < network.num_nodes(); ++v) {
        const double dx = network.node(v).x - network.node(hub).x;
        const double dy = network.node(v).y - network.node(hub).y;
        if (std::sqrt(dx * dx + dy * dy) <= config.hub_jitter_radius_m) {
          near.push_back(v);
        }
      }
      if (!near.empty()) neighborhoods_.push_back(std::move(near));
    }
  }

  StatusOr<std::pair<int, int>> Sample(Rng& rng) const {
    for (int attempt = 0; attempt < 300; ++attempt) {
      const int a = SampleNode(rng);
      const int b = SampleNode(rng);
      if (a == b) continue;
      const double dx = network_.node(a).x - network_.node(b).x;
      const double dy = network_.node(a).y - network_.node(b).y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist >= config_.min_od_distance_m &&
          (config_.max_od_distance_m <= 0 ||
           dist <= config_.max_od_distance_m)) {
        return std::make_pair(a, b);
      }
    }
    return Status::Internal("could not sample a distant OD pair");
  }

 private:
  int SampleNode(Rng& rng) const {
    if (neighborhoods_.empty()) {
      return static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(network_.num_nodes())));
    }
    const auto& near =
        neighborhoods_[rng.UniformInt(neighborhoods_.size())];
    return near[rng.UniformInt(near.size())];
  }

  const graph::RoadNetwork& network_;
  const DatasetConfig& config_;
  std::vector<std::vector<int>> neighborhoods_;
};

// Multiplicative lognormal noise factor.
double LogNormalFactor(Rng& rng, double sigma) {
  return std::exp(rng.Gaussian(0.0, sigma));
}

}  // namespace

int64_t SampleDepartureTime(const DatasetConfig& config, Rng& rng) {
  if (rng.Bernoulli(config.peak_demand_fraction)) {
    // Weekday peak: pick AM or PM window.
    const int day = static_cast<int>(rng.UniformInt(5));
    const bool morning = rng.Bernoulli(0.5);
    const double start_h = morning ? 7.0 : 16.0;
    const double len_h = morning ? 2.0 : 3.0;
    const double hour = start_h + rng.Uniform() * len_h;
    return day * kDayS + static_cast<int64_t>(hour * 3600.0);
  }
  return static_cast<int64_t>(rng.Uniform() * 7.0 * kDayS);
}

StatusOr<CityDataset> GenerateDataset(
    std::string name, std::shared_ptr<graph::RoadNetwork> network,
    std::shared_ptr<TrafficModel> traffic, const DatasetConfig& config) {
  TPR_CHECK(network != nullptr && traffic != nullptr);
  Rng rng(config.seed);
  CityDataset ds;
  ds.name = std::move(name);
  ds.network = network;
  ds.traffic = traffic;

  const graph::RoadNetwork& net = *network;
  const TrafficModel& tm = *traffic;
  const OdSampler od_sampler(net, config, rng);

  // The driver's subjective cost of an edge on a given trip: free-flow
  // time perturbed by a per-trip, per-edge preference factor. Drivers
  // choose near-fastest paths, not exactly fastest ones.
  auto driver_path = [&](int src, int dst, int64_t depart,
                         Rng& trip_rng) -> StatusOr<graph::PathResult> {
    const uint64_t trip_seed = trip_rng.NextU64();
    auto cost = [&, trip_seed](int eid, double t) {
      Rng edge_rng(trip_seed ^ (static_cast<uint64_t>(eid) * 0x9E3779B9ULL));
      const double pref = LogNormalFactor(edge_rng, config.driver_preference_noise);
      return tm.TravelTime(eid, t) * pref;
    };
    return graph::TimeDependentFastestPath(net, src, dst,
                                           static_cast<double>(depart), cost);
  };

  auto observed_travel_time = [&](const graph::Path& path, int64_t depart,
                                  Rng& obs_rng) {
    return tm.PathTravelTime(path, static_cast<double>(depart)) *
           LogNormalFactor(obs_rng, config.observation_noise);
  };

  // ---- Unlabeled pool: trajectory paths at several departure times. ----
  // Each trajectory draws from its own rng stream derived from
  // (dataset seed, trajectory index), so trajectories generate in
  // parallel into fixed slots and the pool is identical for any thread
  // count. OD-sampling failures are surfaced after the join, in index
  // order.
  const int n_traj = config.num_unlabeled_trajectories;
  std::vector<std::vector<TemporalPathSample>> traj_samples(n_traj);
  std::vector<Status> traj_status(n_traj, Status::OK());
  par::DefaultPool().ParallelFor(n_traj, [&](int i) {
    Rng traj_rng(MixSeed(config.seed, static_cast<uint64_t>(i)));
    auto od = od_sampler.Sample(traj_rng);
    if (!od.ok()) {
      traj_status[i] = od.status();
      return;
    }
    const int64_t first_depart = SampleDepartureTime(config, traj_rng);
    auto traj = driver_path(od->first, od->second, first_depart, traj_rng);
    if (!traj.ok()) return;  // unreachable OD; skip
    for (int r = 0; r < config.departures_per_trajectory; ++r) {
      TemporalPathSample s;
      s.path = traj->edges;
      s.depart_time_s =
          r == 0 ? first_depart : SampleDepartureTime(config, traj_rng);
      s.travel_time_s = observed_travel_time(s.path, s.depart_time_s, traj_rng);
      s.group = -1;
      traj_samples[i].push_back(std::move(s));
    }
  });
  for (const auto& st : traj_status) {
    if (!st.ok()) return st;
  }
  for (auto& samples : traj_samples) {
    for (auto& s : samples) ds.unlabeled.push_back(std::move(s));
  }
  if (ds.unlabeled.empty()) {
    return Status::Internal("failed to generate any unlabeled paths");
  }

  // ---- Labeled pool: groups of trajectory + alternatives. ----
  // Same per-index stream scheme as the unlabeled pool, with an extra
  // salt so group streams never collide with trajectory streams. The
  // salt value also picks which OD pairs the groups draw; 4 keeps the
  // alternative-path similarity scores well separated within groups on
  // the miniature eval presets (tied rank scores make grouped Kendall
  // tau structurally unable to reach 1 even for an oracle ranker).
  constexpr uint64_t kGroupSalt = 4;
  const int n_groups = config.num_labeled_groups;
  std::vector<std::vector<TemporalPathSample>> group_samples(n_groups);
  std::vector<Status> group_status(n_groups, Status::OK());
  par::DefaultPool().ParallelFor(n_groups, [&](int g) {
    Rng group_rng(MixSeed(MixSeed(config.seed, kGroupSalt),
                          static_cast<uint64_t>(g)));
    auto od = od_sampler.Sample(group_rng);
    if (!od.ok()) {
      group_status[g] = od.status();
      return;
    }
    const int64_t depart = SampleDepartureTime(config, group_rng);
    auto traj = driver_path(od->first, od->second, depart, group_rng);
    if (!traj.ok()) return;

    // Alternatives by length-based k-shortest with penalties.
    auto alts = graph::KAlternativePaths(
        net, od->first, od->second, config.alternatives_per_group + 1,
        [&](int eid) { return net.edge(eid).length_m; });
    if (!alts.ok()) return;

    TemporalPathSample top;
    top.path = traj->edges;
    top.depart_time_s = depart;
    top.travel_time_s = observed_travel_time(top.path, depart, group_rng);
    top.rank_score = 1.0;
    top.recommended = 1;
    top.group = g;
    group_samples[g].push_back(std::move(top));

    int added = 0;
    for (const auto& alt : *alts) {
      if (added >= config.alternatives_per_group) break;
      if (alt.edges == traj->edges) continue;
      TemporalPathSample s;
      s.path = alt.edges;
      s.depart_time_s = depart;
      s.travel_time_s = observed_travel_time(s.path, depart, group_rng);
      s.rank_score = graph::PathSimilarity(net, alt.edges, traj->edges);
      s.recommended = 0;
      s.group = g;
      group_samples[g].push_back(std::move(s));
      ++added;
    }
  });
  for (const auto& st : group_status) {
    if (!st.ok()) return st;
  }
  for (auto& samples : group_samples) {
    for (auto& s : samples) ds.labeled.push_back(std::move(s));
  }
  if (ds.labeled.empty()) {
    return Status::Internal("failed to generate any labeled paths");
  }
  return ds;
}

std::shared_ptr<TrafficModel> MakeShiftedTraffic(const CityDataset& base,
                                                 RegimeShift shift) {
  TPR_CHECK(base.network != nullptr && base.traffic != nullptr);
  auto composed = base.traffic->regime()
                      ? Compose(*base.traffic->regime(), shift)
                      : std::move(shift);
  return std::make_shared<TrafficModel>(
      base.network.get(), base.traffic->config(),
      std::make_shared<const RegimeShift>(std::move(composed)));
}

StatusOr<CityDataset> GenerateShiftedDataset(const CityDataset& base,
                                             RegimeShift shift,
                                             const DatasetConfig& config) {
  auto traffic = MakeShiftedTraffic(base, std::move(shift));
  return GenerateDataset(base.name + "-shifted", base.network,
                         std::move(traffic), config);
}

}  // namespace tpr::synth
