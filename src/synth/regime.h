#ifndef TPR_SYNTH_REGIME_H_
#define TPR_SYNTH_REGIME_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/road_network.h"

namespace tpr::synth {

/// Kinds of regime shift the simulator can inject. Each stands in for a
/// class of real-world drift that invalidates a frozen travel-time model:
/// localized capacity loss (incidents), hard topology change (closures),
/// a move of the demand peaks in time (rush-hour migration), and a
/// citywide change of demand volume (seasonal scaling).
enum class RegimeKind : int {
  kIncident = 0,     // a seeded subset of edges slows to `speed_scale`
  kClosure = 1,      // a seeded subset of edges becomes near-impassable
  kRushHourShift = 2,  // weekday peak windows move by `hour_shift` hours
  kSeasonalDemand = 3,  // peak severity scales by `demand_scale`
};

const char* RegimeKindName(RegimeKind kind);

/// Declarative description of one shift. Materialization is a pure
/// function of (network, config): the same seed always selects the same
/// edges, so post-shift worlds are bitwise reproducible.
struct RegimeShiftConfig {
  RegimeKind kind = RegimeKind::kIncident;
  uint64_t seed = 1;

  /// Fraction of edges affected (incidents/closures). At least one edge
  /// is always selected when the network is non-empty.
  double edge_fraction = 0.03;

  /// Speed multiplier on affected edges for kIncident (closures use a
  /// fixed near-zero multiplier regardless of this value).
  double speed_scale = 0.35;

  /// Signed shift of both weekday peak windows for kRushHourShift, in
  /// hours (+1.5 moves the 7-9 a.m. peak to 8:30-10:30).
  double hour_shift = 1.5;

  /// Multiplier on peak severity for kSeasonalDemand (1.5 = holiday
  /// season demand; 0.6 = summer lull).
  double demand_scale = 1.5;
};

/// A materialized shift: the concrete per-edge and per-window effects a
/// TrafficModel consults. Value type; cheap to copy relative to dataset
/// generation. Compose multiple shifts with `Compose`.
struct RegimeShift {
  /// (edge_id, speed multiplier), sorted ascending by edge id.
  std::vector<std::pair<int, double>> edge_speed_scale;

  /// Hours added to the weekday AM/PM peak windows.
  double am_shift_h = 0.0;
  double pm_shift_h = 0.0;

  /// Multiplier on TrafficConfig::peak_severity.
  double severity_scale = 1.0;

  /// Speed multiplier for an edge (1.0 when unaffected). Binary search
  /// over the sorted affected list.
  double EdgeScale(int edge_id) const;

  bool IsIdentity() const {
    return edge_speed_scale.empty() && am_shift_h == 0.0 &&
           pm_shift_h == 0.0 && severity_scale == 1.0;
  }
};

/// Materializes a shift against a network. Deterministic: edge selection
/// is a seeded Fisher-Yates prefix, independent of thread count.
RegimeShift MakeRegimeShift(const graph::RoadNetwork& network,
                            const RegimeShiftConfig& config);

/// Left-to-right composition: edge scales multiply, window shifts add,
/// severity scales multiply.
RegimeShift Compose(const RegimeShift& a, const RegimeShift& b);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_REGIME_H_
