#include "synth/regime.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace tpr::synth {

namespace {

// Closed edges keep a sliver of speed so existing paths stay evaluable:
// the shift must degrade the world, not crash queries against it.
constexpr double kClosureSpeedScale = 0.05;

std::vector<int> PickEdges(const graph::RoadNetwork& network,
                           double fraction, uint64_t seed) {
  const int n = network.num_edges();
  if (n == 0) return {};
  int count = static_cast<int>(fraction * n);
  count = std::clamp(count, 1, n);
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(MixSeed(seed, 0x5e91'd21fULL));
  rng.Shuffle(ids);
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

const char* RegimeKindName(RegimeKind kind) {
  switch (kind) {
    case RegimeKind::kIncident: return "incident";
    case RegimeKind::kClosure: return "closure";
    case RegimeKind::kRushHourShift: return "rush-hour-shift";
    case RegimeKind::kSeasonalDemand: return "seasonal-demand";
  }
  return "unknown";
}

double RegimeShift::EdgeScale(int edge_id) const {
  auto it = std::lower_bound(
      edge_speed_scale.begin(), edge_speed_scale.end(), edge_id,
      [](const std::pair<int, double>& e, int id) { return e.first < id; });
  if (it != edge_speed_scale.end() && it->first == edge_id) return it->second;
  return 1.0;
}

RegimeShift MakeRegimeShift(const graph::RoadNetwork& network,
                            const RegimeShiftConfig& config) {
  RegimeShift shift;
  switch (config.kind) {
    case RegimeKind::kIncident: {
      for (int id : PickEdges(network, config.edge_fraction, config.seed)) {
        shift.edge_speed_scale.emplace_back(id, config.speed_scale);
      }
      break;
    }
    case RegimeKind::kClosure: {
      for (int id : PickEdges(network, config.edge_fraction, config.seed)) {
        shift.edge_speed_scale.emplace_back(id, kClosureSpeedScale);
      }
      break;
    }
    case RegimeKind::kRushHourShift: {
      shift.am_shift_h = config.hour_shift;
      shift.pm_shift_h = config.hour_shift;
      break;
    }
    case RegimeKind::kSeasonalDemand: {
      shift.severity_scale = config.demand_scale;
      break;
    }
  }
  return shift;
}

RegimeShift Compose(const RegimeShift& a, const RegimeShift& b) {
  RegimeShift out;
  out.am_shift_h = a.am_shift_h + b.am_shift_h;
  out.pm_shift_h = a.pm_shift_h + b.pm_shift_h;
  out.severity_scale = a.severity_scale * b.severity_scale;
  // Merge the two sorted affected-edge lists, multiplying on overlap.
  auto ia = a.edge_speed_scale.begin(), ea = a.edge_speed_scale.end();
  auto ib = b.edge_speed_scale.begin(), eb = b.edge_speed_scale.end();
  while (ia != ea || ib != eb) {
    if (ib == eb || (ia != ea && ia->first < ib->first)) {
      out.edge_speed_scale.push_back(*ia++);
    } else if (ia == ea || ib->first < ia->first) {
      out.edge_speed_scale.push_back(*ib++);
    } else {
      out.edge_speed_scale.emplace_back(ia->first, ia->second * ib->second);
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace tpr::synth
