#include "synth/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tpr::synth {
namespace {

std::string PathToString(const graph::Path& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += '|';
    out += std::to_string(path[i]);
  }
  return out;
}

StatusOr<graph::Path> PathFromString(const std::string& s) {
  graph::Path path;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, '|')) {
    if (part.empty()) continue;
    path.push_back(std::stoi(part));
  }
  if (path.empty()) return Status::InvalidArgument("empty path field");
  return path;
}

Status WriteSamples(const std::vector<TemporalPathSample>& samples,
                    const std::string& file) {
  std::ofstream out(file);
  if (!out) return Status::Internal("cannot open " + file + " for writing");
  out << "path,depart_time_s,travel_time_s,rank_score,recommended,group\n";
  for (const auto& s : samples) {
    out << PathToString(s.path) << ',' << s.depart_time_s << ','
        << s.travel_time_s << ',' << s.rank_score << ',' << s.recommended
        << ',' << s.group << '\n';
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + file);
}

StatusOr<std::vector<TemporalPathSample>> ReadSamples(
    const std::string& file) {
  std::ifstream in(file);
  if (!in) return Status::NotFound("cannot open " + file);
  std::string line;
  std::getline(in, line);  // header
  std::vector<TemporalPathSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    TemporalPathSample s;
    if (!std::getline(ss, field, ',')) {
      return Status::InvalidArgument("bad sample row: " + line);
    }
    auto path = PathFromString(field);
    if (!path.ok()) return path.status();
    s.path = std::move(*path);
    std::getline(ss, field, ',');
    s.depart_time_s = std::stoll(field);
    std::getline(ss, field, ',');
    s.travel_time_s = std::stod(field);
    std::getline(ss, field, ',');
    s.rank_score = std::stod(field);
    std::getline(ss, field, ',');
    s.recommended = std::stoi(field);
    std::getline(ss, field, ',');
    s.group = std::stoi(field);
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace

Status SaveCityDataset(const CityDataset& data, const std::string& directory) {
  if (data.network == nullptr) return Status::InvalidArgument("null network");
  const auto& net = *data.network;
  {
    std::ofstream out(directory + "/meta.csv");
    if (!out) return Status::Internal("cannot write meta.csv");
    out << "name\n" << data.name << '\n';
  }
  {
    std::ofstream out(directory + "/nodes.csv");
    if (!out) return Status::Internal("cannot write nodes.csv");
    out << "x,y\n";
    for (int v = 0; v < net.num_nodes(); ++v) {
      out << net.node(v).x << ',' << net.node(v).y << '\n';
    }
  }
  {
    std::ofstream out(directory + "/edges.csv");
    if (!out) return Status::Internal("cannot write edges.csv");
    out << "from,to,length_m,road_type,num_lanes,one_way,has_signal,zone\n";
    for (const auto& e : net.edges()) {
      out << e.from << ',' << e.to << ',' << e.length_m << ','
          << static_cast<int>(e.road_type) << ',' << e.num_lanes << ','
          << (e.one_way ? 1 : 0) << ',' << (e.has_signal ? 1 : 0) << ','
          << e.zone << '\n';
    }
  }
  TPR_RETURN_IF_ERROR(WriteSamples(data.unlabeled,
                                   directory + "/unlabeled.csv"));
  TPR_RETURN_IF_ERROR(WriteSamples(data.labeled, directory + "/labeled.csv"));
  return Status::OK();
}

StatusOr<CityDataset> LoadCityDataset(const std::string& directory,
                                      const TrafficConfig& traffic) {
  CityDataset data;
  {
    std::ifstream in(directory + "/meta.csv");
    if (!in) return Status::NotFound("cannot open meta.csv");
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, data.name);
  }
  auto network = std::make_shared<graph::RoadNetwork>();
  {
    std::ifstream in(directory + "/nodes.csv");
    if (!in) return Status::NotFound("cannot open nodes.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      std::string x, y;
      std::getline(ss, x, ',');
      std::getline(ss, y, ',');
      network->AddNode(std::stod(x), std::stod(y));
    }
  }
  {
    std::ifstream in(directory + "/edges.csv");
    if (!in) return Status::NotFound("cannot open edges.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      std::string f[8];
      for (auto& field : f) std::getline(ss, field, ',');
      auto added = network->AddEdge(
          std::stoi(f[0]), std::stoi(f[1]),
          static_cast<graph::RoadType>(std::stoi(f[3])), std::stoi(f[4]),
          f[5] == "1", f[6] == "1", std::stoi(f[7]), std::stod(f[2]));
      if (!added.ok()) return added.status();
    }
  }
  data.network = network;
  data.traffic = std::make_shared<TrafficModel>(network.get(), traffic);
  auto unlabeled = ReadSamples(directory + "/unlabeled.csv");
  if (!unlabeled.ok()) return unlabeled.status();
  data.unlabeled = std::move(*unlabeled);
  auto labeled = ReadSamples(directory + "/labeled.csv");
  if (!labeled.ok()) return labeled.status();
  data.labeled = std::move(*labeled);
  for (const auto& s : data.unlabeled) {
    TPR_RETURN_IF_ERROR(network->ValidatePath(s.path));
  }
  for (const auto& s : data.labeled) {
    TPR_RETURN_IF_ERROR(network->ValidatePath(s.path));
  }
  return data;
}

}  // namespace tpr::synth
