#include "synth/io.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace tpr::synth {
namespace {

// Checked field parsers. External CSV is untrusted input: every field
// goes through these instead of std::stoi/std::stod, whose exceptions
// would crash callers that follow this library's no-throw Status
// convention. Trailing junk, overflow, empty fields, and non-finite
// floats are all InvalidArgument.

template <typename Int>
Status ParseInt(const std::string& s, const char* what, Int* out) {
  const char* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, *out);
  if (ec != std::errc() || p != end) {
    return Status::InvalidArgument("bad " + std::string(what) + " field: \"" +
                                   s + "\"");
  }
  return Status::OK();
}

Status ParseDouble(const std::string& s, const char* what, double* out) {
  if (s.empty()) {
    return Status::InvalidArgument("empty " + std::string(what) + " field");
  }
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      !std::isfinite(*out)) {
    return Status::InvalidArgument("bad " + std::string(what) + " field: \"" +
                                   s + "\"");
  }
  return Status::OK();
}

std::string PathToString(const graph::Path& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += '|';
    out += std::to_string(path[i]);
  }
  return out;
}

StatusOr<graph::Path> PathFromString(const std::string& s) {
  graph::Path path;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, '|')) {
    if (part.empty()) continue;
    int edge = 0;
    TPR_RETURN_IF_ERROR(ParseInt(part, "path edge id", &edge));
    path.push_back(edge);
  }
  if (path.empty()) return Status::InvalidArgument("empty path field");
  return path;
}

Status WriteSamples(const std::vector<TemporalPathSample>& samples,
                    const std::string& file) {
  std::ofstream out(file);
  if (!out) return Status::Internal("cannot open " + file + " for writing");
  out << "path,depart_time_s,travel_time_s,rank_score,recommended,group\n";
  for (const auto& s : samples) {
    out << PathToString(s.path) << ',' << s.depart_time_s << ','
        << s.travel_time_s << ',' << s.rank_score << ',' << s.recommended
        << ',' << s.group << '\n';
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + file);
}

StatusOr<std::vector<TemporalPathSample>> ReadSamples(
    const std::string& file) {
  std::ifstream in(file);
  if (!in) return Status::NotFound("cannot open " + file);
  std::string line;
  std::getline(in, line);  // header
  std::vector<TemporalPathSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string f[6];
    for (int i = 0; i < 6; ++i) {
      if (!std::getline(ss, f[i], ',')) {
        return Status::InvalidArgument("truncated sample row: " + line);
      }
    }
    std::string extra;
    if (std::getline(ss, extra, ',')) {
      return Status::InvalidArgument("too many fields in sample row: " +
                                     line);
    }
    TemporalPathSample s;
    auto path = PathFromString(f[0]);
    if (!path.ok()) return path.status();
    s.path = std::move(*path);
    TPR_RETURN_IF_ERROR(ParseInt(f[1], "depart_time_s", &s.depart_time_s));
    TPR_RETURN_IF_ERROR(ParseDouble(f[2], "travel_time_s", &s.travel_time_s));
    TPR_RETURN_IF_ERROR(ParseDouble(f[3], "rank_score", &s.rank_score));
    int recommended = 0;
    TPR_RETURN_IF_ERROR(ParseInt(f[4], "recommended", &recommended));
    if (recommended != 0 && recommended != 1) {
      return Status::OutOfRange("recommended flag must be 0 or 1: " + line);
    }
    s.recommended = recommended;
    TPR_RETURN_IF_ERROR(ParseInt(f[5], "group", &s.group));
    if (s.depart_time_s < 0) {
      return Status::OutOfRange("negative depart_time_s: " + line);
    }
    if (s.travel_time_s < 0.0) {
      return Status::OutOfRange("negative travel_time_s: " + line);
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace

Status SaveCityDataset(const CityDataset& data, const std::string& directory) {
  if (data.network == nullptr) return Status::InvalidArgument("null network");
  const auto& net = *data.network;
  {
    std::ofstream out(directory + "/meta.csv");
    if (!out) return Status::Internal("cannot write meta.csv");
    out << "name\n" << data.name << '\n';
  }
  {
    std::ofstream out(directory + "/nodes.csv");
    if (!out) return Status::Internal("cannot write nodes.csv");
    out << "x,y\n";
    for (int v = 0; v < net.num_nodes(); ++v) {
      out << net.node(v).x << ',' << net.node(v).y << '\n';
    }
  }
  {
    std::ofstream out(directory + "/edges.csv");
    if (!out) return Status::Internal("cannot write edges.csv");
    out << "from,to,length_m,road_type,num_lanes,one_way,has_signal,zone\n";
    for (const auto& e : net.edges()) {
      out << e.from << ',' << e.to << ',' << e.length_m << ','
          << static_cast<int>(e.road_type) << ',' << e.num_lanes << ','
          << (e.one_way ? 1 : 0) << ',' << (e.has_signal ? 1 : 0) << ','
          << e.zone << '\n';
    }
  }
  TPR_RETURN_IF_ERROR(WriteSamples(data.unlabeled,
                                   directory + "/unlabeled.csv"));
  TPR_RETURN_IF_ERROR(WriteSamples(data.labeled, directory + "/labeled.csv"));
  return Status::OK();
}

StatusOr<CityDataset> LoadCityDataset(const std::string& directory,
                                      const TrafficConfig& traffic) {
  CityDataset data;
  {
    std::ifstream in(directory + "/meta.csv");
    if (!in) return Status::NotFound("cannot open meta.csv");
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, data.name);
  }
  auto network = std::make_shared<graph::RoadNetwork>();
  {
    std::ifstream in(directory + "/nodes.csv");
    if (!in) return Status::NotFound("cannot open nodes.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      std::string x, y;
      if (!std::getline(ss, x, ',') || !std::getline(ss, y, ',')) {
        return Status::InvalidArgument("truncated node row: " + line);
      }
      double xv = 0.0, yv = 0.0;
      TPR_RETURN_IF_ERROR(ParseDouble(x, "node x", &xv));
      TPR_RETURN_IF_ERROR(ParseDouble(y, "node y", &yv));
      network->AddNode(xv, yv);
    }
  }
  {
    std::ifstream in(directory + "/edges.csv");
    if (!in) return Status::NotFound("cannot open edges.csv");
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      std::string f[8];
      for (auto& field : f) {
        if (!std::getline(ss, field, ',')) {
          return Status::InvalidArgument("truncated edge row: " + line);
        }
      }
      int from = 0, to = 0, road_type = 0, num_lanes = 0, zone = 0;
      double length_m = 0.0;
      TPR_RETURN_IF_ERROR(ParseInt(f[0], "edge from", &from));
      TPR_RETURN_IF_ERROR(ParseInt(f[1], "edge to", &to));
      TPR_RETURN_IF_ERROR(ParseDouble(f[2], "edge length_m", &length_m));
      TPR_RETURN_IF_ERROR(ParseInt(f[3], "edge road_type", &road_type));
      TPR_RETURN_IF_ERROR(ParseInt(f[4], "edge num_lanes", &num_lanes));
      TPR_RETURN_IF_ERROR(ParseInt(f[7], "edge zone", &zone));
      if (road_type < 0 || road_type >= graph::kNumRoadTypes) {
        return Status::OutOfRange("edge road_type out of range: " + line);
      }
      if (f[5] != "0" && f[5] != "1") {
        return Status::OutOfRange("edge one_way must be 0 or 1: " + line);
      }
      if (f[6] != "0" && f[6] != "1") {
        return Status::OutOfRange("edge has_signal must be 0 or 1: " + line);
      }
      // AddEdge validates endpoint and lane ranges itself; out-of-range
      // node ids in a hand-edited edges.csv surface as its Status.
      auto added = network->AddEdge(
          from, to, static_cast<graph::RoadType>(road_type), num_lanes,
          f[5] == "1", f[6] == "1", zone, length_m);
      if (!added.ok()) return added.status();
    }
  }
  data.network = network;
  data.traffic = std::make_shared<TrafficModel>(network.get(), traffic);
  auto unlabeled = ReadSamples(directory + "/unlabeled.csv");
  if (!unlabeled.ok()) return unlabeled.status();
  data.unlabeled = std::move(*unlabeled);
  auto labeled = ReadSamples(directory + "/labeled.csv");
  if (!labeled.ok()) return labeled.status();
  data.labeled = std::move(*labeled);
  for (const auto& s : data.unlabeled) {
    TPR_RETURN_IF_ERROR(network->ValidatePath(s.path));
  }
  for (const auto& s : data.labeled) {
    TPR_RETURN_IF_ERROR(network->ValidatePath(s.path));
  }
  return data;
}

}  // namespace tpr::synth
