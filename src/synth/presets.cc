#include "synth/presets.h"

#include <algorithm>
#include <memory>

namespace tpr::synth {

CityPreset AalborgPreset() {
  CityPreset p;
  p.name = "Aalborg";
  p.city.grid_width = 13;
  p.city.grid_height = 13;
  p.city.spacing_m = 300.0;
  p.city.drop_edge_prob = 0.10;
  p.city.one_way_prob = 0.08;
  p.city.arterial_every = 4;
  p.city.seed = 1001;
  p.traffic.peak_severity = 0.45;
  p.traffic.signal_delay_s = 10.0;
  p.data.num_unlabeled_trajectories = 300;
  p.data.departures_per_trajectory = 3;
  p.data.num_labeled_groups = 60;
  p.data.alternatives_per_group = 4;
  p.data.min_od_distance_m = 1500.0;
  p.data.max_od_distance_m = 2600.0;
  p.data.num_hubs = 20;
  p.data.observation_noise = 0.12;
  p.data.seed = 2001;
  return p;
}

CityPreset HarbinPreset() {
  CityPreset p;
  p.name = "Harbin";
  p.city.grid_width = 15;
  p.city.grid_height = 15;
  p.city.spacing_m = 230.0;
  p.city.drop_edge_prob = 0.06;
  p.city.one_way_prob = 0.12;
  p.city.signal_prob_major = 0.7;
  p.city.arterial_every = 3;
  p.city.seed = 1002;
  p.traffic.peak_severity = 0.7;
  p.traffic.signal_delay_s = 16.0;
  p.data.num_unlabeled_trajectories = 300;
  p.data.departures_per_trajectory = 3;
  p.data.num_labeled_groups = 60;
  p.data.alternatives_per_group = 4;
  p.data.min_od_distance_m = 1300.0;
  p.data.max_od_distance_m = 2400.0;
  p.data.num_hubs = 22;
  p.data.observation_noise = 0.12;
  p.data.seed = 2002;
  return p;
}

CityPreset ChengduPreset() {
  CityPreset p;
  p.name = "Chengdu";
  p.city.grid_width = 16;
  p.city.grid_height = 16;
  p.city.spacing_m = 190.0;
  p.city.drop_edge_prob = 0.05;
  p.city.one_way_prob = 0.2;
  p.city.arterial_every = 4;
  p.city.seed = 1003;
  p.traffic.peak_severity = 0.6;
  p.traffic.signal_delay_s = 14.0;
  p.data.num_unlabeled_trajectories = 300;
  p.data.departures_per_trajectory = 3;
  p.data.num_labeled_groups = 60;
  p.data.alternatives_per_group = 4;
  p.data.min_od_distance_m = 1200.0;
  p.data.max_od_distance_m = 2200.0;
  p.data.num_hubs = 24;
  p.data.observation_noise = 0.12;
  p.data.seed = 2003;
  return p;
}

std::vector<CityPreset> AllPresets() {
  return {AalborgPreset(), HarbinPreset(), ChengduPreset()};
}

void ScaleDataset(CityPreset& preset, double factor) {
  auto scale = [factor](int v) {
    return std::max(8, static_cast<int>(v * factor));
  };
  preset.data.num_unlabeled_trajectories =
      scale(preset.data.num_unlabeled_trajectories);
  preset.data.num_labeled_groups = scale(preset.data.num_labeled_groups);
}

StatusOr<CityDataset> BuildPresetDataset(const CityPreset& preset) {
  auto network_or = GenerateCity(preset.city);
  if (!network_or.ok()) return network_or.status();
  auto network = std::make_shared<graph::RoadNetwork>(
      std::move(network_or).value());
  auto traffic = std::make_shared<TrafficModel>(network.get(), preset.traffic);
  // Keep the network alive alongside the traffic model inside the dataset.
  return GenerateDataset(preset.name, network, traffic, preset.data);
}

}  // namespace tpr::synth
