#ifndef TPR_SYNTH_TRAFFIC_MODEL_H_
#define TPR_SYNTH_TRAFFIC_MODEL_H_

#include <cstdint>
#include <memory>

#include "graph/road_network.h"
#include "synth/regime.h"

namespace tpr::synth {

/// Parameters of the synthetic time-of-day traffic model. The model stands
/// in for the real GPS-derived congestion in the paper's datasets: travel
/// speed on an edge depends on its road class, its congestion zone, and the
/// time of week, with weekday morning and afternoon peaks.
struct TrafficConfig {
  /// Fraction of free-flow speed lost at the center of a peak on the most
  /// affected (downtown) edges. 0.6 means speeds drop to 40% of free flow.
  double peak_severity = 0.6;

  /// Morning peak window (hours, weekdays). Matches the paper's POP labels.
  double am_start_h = 7.0;
  double am_end_h = 9.0;

  /// Afternoon peak window (hours, weekdays).
  double pm_start_h = 16.0;
  double pm_end_h = 19.0;

  /// How much each zone feels congestion: index 0 = downtown.
  double zone_factor[3] = {1.0, 0.65, 0.35};

  /// Per-signal expected delay in seconds added to edge traversal.
  double signal_delay_s = 12.0;

  /// Extra per-lane speed bonus: each lane above 1 adds this fraction.
  double lane_speed_bonus = 0.06;

  /// Weekend congestion is scaled by this factor (mild midday bump only).
  double weekend_factor = 0.25;
};

/// Deterministic traffic model over a road network. Thread-compatible:
/// all queries are const. An optional regime shift overlays the base
/// world: affected edges lose speed, peak windows move, and peak
/// severity rescales — the post-shift ground truth the drift loop must
/// re-learn.
class TrafficModel {
 public:
  TrafficModel(const graph::RoadNetwork* network, TrafficConfig config,
               std::shared_ptr<const RegimeShift> regime = nullptr)
      : network_(network), config_(config), regime_(std::move(regime)) {}

  /// Free-flow speed (m/s) of an edge, from its road class and lanes.
  double FreeFlowSpeed(int edge_id) const;

  /// Congestion multiplier in (0, 1]: the fraction of free-flow speed
  /// available on the edge at the given time (seconds since Monday 00:00,
  /// wraps weekly).
  double CongestionMultiplier(int edge_id, double time_s) const;

  /// Traversal time (seconds) of an edge entered at the given time,
  /// including expected signal delay.
  double TravelTime(int edge_id, double time_s) const;

  /// Travel time of a whole path departing at depart_time_s, integrating
  /// edge entry times along the way (time-expanded evaluation).
  double PathTravelTime(const graph::Path& path, double depart_time_s) const;

  /// Citywide congestion level at a time: the demand-weighted peak
  /// intensity in [0, 1]. Basis for the TCI weak labels (Table VII).
  double CityCongestionIndex(double time_s) const;

  const TrafficConfig& config() const { return config_; }
  const graph::RoadNetwork& network() const { return *network_; }
  const RegimeShift* regime() const { return regime_.get(); }

 private:
  /// Peak intensity in [0, 1] as a function of time of week (0 away from
  /// peaks, 1 at the center of a weekday peak). Peak windows honour the
  /// active regime's hour shifts.
  double PeakIntensity(double time_s) const;

  const graph::RoadNetwork* network_;
  TrafficConfig config_;
  std::shared_ptr<const RegimeShift> regime_;
};

/// Free-flow speed (m/s) by road class alone, before the lane bonus.
double BaseSpeedForType(graph::RoadType type);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_TRAFFIC_MODEL_H_
