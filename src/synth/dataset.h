#ifndef TPR_SYNTH_DATASET_H_
#define TPR_SYNTH_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/road_network.h"
#include "synth/traffic_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace tpr::synth {

/// A temporal path tp = (p, t) (paper Definition 4) together with the
/// simulator's ground-truth task labels.
struct TemporalPathSample {
  graph::Path path;
  int64_t depart_time_s = 0;   // seconds since Monday 00:00
  double travel_time_s = 0.0;  // noisy observed travel time (TTE label)
  double rank_score = 0.0;     // similarity to the trajectory path (PR label)
  int recommended = 0;         // 1 iff this is the trajectory path (PRec)
  int group = -1;              // OD query group id (for ranking/recommendation)
};

/// Parameters of the temporal-path sampler.
struct DatasetConfig {
  /// Distinct origin-destination trajectory paths in the unlabeled pool.
  int num_unlabeled_trajectories = 400;

  /// Departure-time repetitions per unlabeled trajectory path (the same
  /// path at different times — the raw material for weak-label positives).
  int departures_per_trajectory = 3;

  /// Labeled OD query groups (each yields 1 trajectory + alternatives).
  int num_labeled_groups = 250;

  /// Alternative paths per labeled group (plus the trajectory path).
  int alternatives_per_group = 4;

  /// Minimum OD crow-fly distance in meters (avoids trivial paths).
  double min_od_distance_m = 1200.0;

  /// Maximum OD crow-fly distance in meters (<= 0 disables the cap).
  /// Capping the trip-length spread mirrors intra-city taxi demand.
  double max_od_distance_m = 0.0;

  /// When positive, origins and destinations are drawn from this many
  /// "hub" locations (jittered to nearby intersections) instead of
  /// uniformly — mimicking the commute-corridor concentration of real GPS
  /// datasets, where most trips repeat a limited set of popular routes.
  int num_hubs = 0;

  /// Jitter radius around a hub (meters).
  double hub_jitter_radius_m = 320.0;

  /// Multiplicative lognormal noise sigma on observed travel times.
  double observation_noise = 0.06;

  /// Lognormal sigma of the per-trip driver preference perturbation of
  /// edge costs (drivers don't always take the true fastest path).
  double driver_preference_noise = 0.25;

  /// Probability that a sampled departure falls in a weekday peak window
  /// (the remainder is uniform over the week), mimicking commute demand.
  double peak_demand_fraction = 0.5;

  uint64_t seed = 123;
};

/// One synthetic city's worth of data: the network, its traffic model, an
/// unlabeled pool for representation learning, and a labeled pool for the
/// downstream tasks.
struct CityDataset {
  std::string name;
  std::shared_ptr<graph::RoadNetwork> network;
  std::shared_ptr<TrafficModel> traffic;
  std::vector<TemporalPathSample> unlabeled;
  std::vector<TemporalPathSample> labeled;
};

/// Samples a departure time (seconds since Monday 00:00) biased toward
/// weekday peak windows per `peak_demand_fraction`.
int64_t SampleDepartureTime(const DatasetConfig& config, Rng& rng);

/// Generates the full temporal-path dataset for a city. The network and
/// traffic model must outlive the returned dataset (shared ownership is
/// taken). Returns an error if OD sampling repeatedly fails.
StatusOr<CityDataset> GenerateDataset(
    std::string name, std::shared_ptr<graph::RoadNetwork> network,
    std::shared_ptr<TrafficModel> traffic, const DatasetConfig& config);

/// A traffic model over `base`'s network with `shift` overlaid on the
/// base traffic config — the post-shift ground truth.
std::shared_ptr<TrafficModel> MakeShiftedTraffic(const CityDataset& base,
                                                 RegimeShift shift);

/// Streams a fresh post-shift dataset: same network as `base`, shifted
/// traffic, trajectories sampled under `config` (use a new seed for a
/// fresh window). This is the simulator's "post-shift trajectory
/// stream" the adaptation loop fine-tunes on.
StatusOr<CityDataset> GenerateShiftedDataset(const CityDataset& base,
                                             RegimeShift shift,
                                             const DatasetConfig& config);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_DATASET_H_
