#ifndef TPR_SYNTH_IO_H_
#define TPR_SYNTH_IO_H_

#include <string>

#include "synth/dataset.h"

namespace tpr::synth {

/// Serialises a city dataset to a directory of CSV files (nodes.csv,
/// edges.csv, unlabeled.csv, labeled.csv, meta.csv), so experiments can
/// be re-run on a frozen dataset or inspected with external tooling.
/// The directory must exist. Paths are written as '|'-separated edge ids.
Status SaveCityDataset(const CityDataset& data, const std::string& directory);

/// Loads a dataset previously written by SaveCityDataset. The traffic
/// model is reconstructed with the given config (its parameters are not
/// serialised — the samples already carry the observed labels).
StatusOr<CityDataset> LoadCityDataset(const std::string& directory,
                                      const TrafficConfig& traffic = {});

}  // namespace tpr::synth

#endif  // TPR_SYNTH_IO_H_
