#ifndef TPR_SYNTH_WEAK_LABELS_H_
#define TPR_SYNTH_WEAK_LABELS_H_

#include <cstdint>

#include "synth/traffic_model.h"

namespace tpr::synth {

/// The two weak-label schemes of the paper (Definition 6, Table VII).
enum class WeakLabelScheme {
  kPeakOffPeak,        // POP: morning peak / afternoon peak / off-peak
  kCongestionIndex,    // TCI: 4 congestion levels
};

/// POP labels.
enum PopLabel : int {
  kMorningPeak = 0,
  kAfternoonPeak = 1,
  kOffPeak = 2,
};
inline constexpr int kNumPopLabels = 3;

/// Number of TCI levels.
inline constexpr int kNumTciLabels = 4;

/// Peak/off-peak weak label from a departure time (seconds since Monday
/// 00:00): morning peak 7-9 a.m. weekdays, afternoon peak 4-7 p.m.
/// weekdays, off-peak otherwise.
int PopWeakLabel(int64_t depart_time_s);

/// Traffic-congestion-index weak label: the citywide congestion intensity
/// of the traffic model quantised into 4 levels.
int TciWeakLabel(const TrafficModel& model, int64_t depart_time_s);

/// Dispatches on the scheme. Returns a label in [0, NumWeakLabels(scheme)).
int WeakLabelFor(WeakLabelScheme scheme, const TrafficModel& model,
                 int64_t depart_time_s);

/// Cardinality of the label set for a scheme.
int NumWeakLabels(WeakLabelScheme scheme);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_WEAK_LABELS_H_
