#ifndef TPR_SYNTH_GPS_H_
#define TPR_SYNTH_GPS_H_

#include <vector>

#include "graph/road_network.h"
#include "synth/traffic_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace tpr::synth {

/// A timestamped GPS fix (paper Definition 2).
struct GpsPoint {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;  // seconds since Monday 00:00
};

/// Parameters for trace synthesis and map matching.
struct GpsConfig {
  double sample_interval_s = 15.0;  // between fixes
  double noise_m = 12.0;            // GPS position noise (std dev)
  double candidate_radius_m = 60.0; // matching candidate search radius
  double transition_penalty = 0.2;  // HMM probability of a non-adjacent hop
};

/// Simulates a vehicle driving `path` departing at `depart_time_s` under
/// the traffic model and emits noisy GPS fixes at the configured interval.
std::vector<GpsPoint> SynthesizeTrace(const graph::RoadNetwork& network,
                                      const TrafficModel& traffic,
                                      const graph::Path& path,
                                      double depart_time_s,
                                      const GpsConfig& config, Rng& rng);

/// Hidden-Markov map matching (Newson & Krumm style): Viterbi over
/// candidate edges per fix with Gaussian emission on point-to-edge
/// distance and adjacency-favouring transitions. Gaps between matched
/// edges are closed by shortest-path interpolation so the result is a
/// connected Path. Returns NotFound if no fix has any candidate edge.
StatusOr<graph::Path> MapMatch(const graph::RoadNetwork& network,
                               const std::vector<GpsPoint>& trace,
                               const GpsConfig& config);

/// Distance from a point to the segment of edge `edge_id`.
double PointToEdgeDistance(const graph::RoadNetwork& network, int edge_id,
                           double x, double y);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_GPS_H_
