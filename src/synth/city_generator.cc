#include "synth/city_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace tpr::synth {
namespace {

using graph::RoadType;

// Undirected street between two grid intersections, prior to being turned
// into one or two directed road edges.
struct Street {
  int a;
  int b;
  RoadType type;
  int lanes;
  bool has_signal;
  bool one_way;      // if true, direction is a -> b
  bool dropped = false;
};

// Union-find for connectivity restoration after random edge drops.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

StatusOr<graph::RoadNetwork> GenerateCity(const CityConfig& config) {
  if (config.grid_width < 3 || config.grid_height < 3) {
    return Status::InvalidArgument("grid must be at least 3x3");
  }
  Rng rng(config.seed);
  const int w = config.grid_width;
  const int h = config.grid_height;

  graph::RoadNetwork network;
  auto node_id = [w](int col, int row) { return row * w + col; };
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      const double x =
          col * config.spacing_m + rng.Gaussian(0.0, config.jitter_m);
      const double y =
          row * config.spacing_m + rng.Gaussian(0.0, config.jitter_m);
      network.AddNode(x, y);
    }
  }

  const double cx = (w - 1) * config.spacing_m / 2.0;
  const double cy = (h - 1) * config.spacing_m / 2.0;
  const double max_r = std::sqrt(cx * cx + cy * cy);
  auto zone_of = [&](int a, int b) {
    const auto& na = network.node(a);
    const auto& nb = network.node(b);
    const double mx = (na.x + nb.x) / 2.0 - cx;
    const double my = (na.y + nb.y) / 2.0 - cy;
    const double r = std::sqrt(mx * mx + my * my) / max_r;
    if (r < 0.3) return 0;
    if (r < 0.6) return 1;
    return 2;
  };

  auto is_ring = [&](int col, int row) {
    return config.ring_highway &&
           (row == 0 || row == h - 1 || col == 0 || col == w - 1);
  };
  auto on_arterial_row = [&](int row) {
    return row % config.arterial_every == 0;
  };
  auto on_arterial_col = [&](int col) {
    return col % config.arterial_every == 0;
  };

  std::vector<Street> streets;
  auto classify = [&](int c1, int r1, int c2, int r2) {
    Street s;
    s.a = node_id(c1, r1);
    s.b = node_id(c2, r2);
    const bool horizontal = (r1 == r2);
    if (is_ring(c1, r1) && is_ring(c2, r2) &&
        ((horizontal && (r1 == 0 || r1 == h - 1)) ||
         (!horizontal && (c1 == 0 || c1 == w - 1)))) {
      s.type = RoadType::kHighway;
      s.lanes = 3;
      s.has_signal = false;
      s.one_way = false;
    } else if ((horizontal && on_arterial_row(r1)) ||
               (!horizontal && on_arterial_col(c1))) {
      s.type = RoadType::kPrimary;
      s.lanes = rng.Bernoulli(0.5) ? 3 : 2;
      s.has_signal = rng.Bernoulli(config.signal_prob_major);
      s.one_way = false;
    } else if ((horizontal && r1 % 2 == 0) || (!horizontal && c1 % 2 == 0)) {
      s.type = RoadType::kSecondary;
      s.lanes = 2;
      s.has_signal = rng.Bernoulli(config.signal_prob_major);
      s.one_way = false;
    } else {
      s.type = rng.Bernoulli(0.2) ? RoadType::kTertiary
                                  : RoadType::kResidential;
      s.lanes = 1;
      s.has_signal = rng.Bernoulli(config.signal_prob_minor);
      s.one_way = rng.Bernoulli(config.one_way_prob);
      if (s.one_way && rng.Bernoulli(0.5)) std::swap(s.a, s.b);
    }
    return s;
  };

  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      if (col + 1 < w) streets.push_back(classify(col, row, col + 1, row));
      if (row + 1 < h) streets.push_back(classify(col, row, col, row + 1));
    }
  }

  // Randomly drop minor streets, then restore connectivity via union-find.
  for (auto& s : streets) {
    if (s.type == RoadType::kResidential || s.type == RoadType::kTertiary) {
      s.dropped = rng.Bernoulli(config.drop_edge_prob);
    }
  }
  UnionFind uf(w * h);
  for (const auto& s : streets) {
    if (!s.dropped) uf.Union(s.a, s.b);
  }
  for (auto& s : streets) {
    if (s.dropped && uf.Find(s.a) != uf.Find(s.b)) {
      s.dropped = false;
      uf.Union(s.a, s.b);
    }
  }

  // Materialise directed edges. One-way minor streets keep a single
  // direction; everything else gets both directions.
  for (const auto& s : streets) {
    if (s.dropped) continue;
    const int zone = zone_of(s.a, s.b);
    auto fwd = network.AddEdge(s.a, s.b, s.type, s.lanes, s.one_way,
                               s.has_signal, zone);
    TPR_CHECK(fwd.ok());
    if (!s.one_way) {
      auto bwd = network.AddEdge(s.b, s.a, s.type, s.lanes, false,
                                 s.has_signal, zone);
      TPR_CHECK(bwd.ok());
    }
  }

  // Guarantee strong connectivity: nodes that cannot both reach and be
  // reached from the center get their incident one-way streets doubled.
  const int center = node_id(w / 2, h / 2);
  for (int round = 0; round < 4; ++round) {
    auto reach = [&](bool forward) {
      std::vector<char> seen(network.num_nodes(), 0);
      std::queue<int> q;
      q.push(center);
      seen[center] = 1;
      while (!q.empty()) {
        const int u = q.front();
        q.pop();
        const auto& edges = forward ? network.OutEdges(u) : network.InEdges(u);
        for (int eid : edges) {
          const auto& e = network.edge(eid);
          const int v = forward ? e.to : e.from;
          if (!seen[v]) {
            seen[v] = 1;
            q.push(v);
          }
        }
      }
      return seen;
    };
    const auto fwd_seen = reach(true);
    const auto bwd_seen = reach(false);
    bool all_ok = true;
    for (int v = 0; v < network.num_nodes(); ++v) {
      if (fwd_seen[v] && bwd_seen[v]) continue;
      all_ok = false;
      // Add reverse arcs for all incident one-way edges of v.
      std::vector<int> incident = network.OutEdges(v);
      incident.insert(incident.end(), network.InEdges(v).begin(),
                      network.InEdges(v).end());
      for (int eid : incident) {
        const auto& e = network.edge(eid);
        if (!e.one_way) continue;
        auto added = network.AddEdge(e.to, e.from, e.road_type, e.num_lanes,
                                     false, e.has_signal, e.zone, e.length_m);
        TPR_CHECK(added.ok());
      }
    }
    if (all_ok) break;
  }

  return network;
}

}  // namespace tpr::synth
