#include "synth/fleet.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/rng.h"

namespace tpr::synth {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v <= 0) return fallback;
  return static_cast<int>(v);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<uint64_t>(v);
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    return fallback;
  }
  return v;
}

}  // namespace

FleetConfig FleetConfigFromEnv(FleetConfig defaults) {
  defaults.num_cities = EnvInt("TPR_SHARDS", defaults.num_cities);
  defaults.seed = EnvU64("TPR_FLEET_SEED", defaults.seed);
  defaults.dataset_scale = EnvDouble("TPR_FLEET_SCALE", defaults.dataset_scale);
  return defaults;
}

FleetCity MakeFleetCity(uint64_t seed, double dataset_scale, int city_id) {
  TPR_CHECK(city_id >= 0);
  // One private stream per city: every draw below comes from this Rng,
  // so the derivation is a pure function of (seed, city_id) and never
  // sees the fleet size.
  Rng rng(MixSeed(seed, static_cast<uint64_t>(city_id)));

  const std::vector<CityPreset> bases = AllPresets();
  CityPreset p = bases[static_cast<size_t>(
      rng.UniformInt(static_cast<uint64_t>(bases.size())))];

  FleetCity city;
  city.city_id = city_id;
  city.name = "city" + std::to_string(city_id) + "-" + p.name;
  p.name = city.name;

  // Perturb the base preset so no two ids serve the same world even
  // when they drew the same base. Ranges stay inside what the presets
  // themselves span, so derived cities remain realistic.
  p.city.grid_width += static_cast<int>(rng.UniformInt(-2, 2));
  p.city.grid_height += static_cast<int>(rng.UniformInt(-2, 2));
  p.city.spacing_m *= rng.Uniform(0.85, 1.15);
  p.city.drop_edge_prob *= rng.Uniform(0.7, 1.3);
  p.city.one_way_prob *= rng.Uniform(0.7, 1.3);
  p.traffic.peak_severity *= rng.Uniform(0.8, 1.2);
  p.traffic.signal_delay_s *= rng.Uniform(0.8, 1.2);
  p.data.observation_noise *= rng.Uniform(0.8, 1.2);
  // Fresh seeds per city: network, dataset, and traffic randomness all
  // decorrelate across ids.
  p.city.seed = rng.NextU64();
  p.data.seed = rng.NextU64();
  if (dataset_scale != 1.0) ScaleDataset(p, dataset_scale);
  city.preset = std::move(p);

  // The city's drift story: a deterministic schedule of regime shifts,
  // one of each kind in a per-city order with per-city severities.
  std::vector<RegimeKind> kinds = {
      RegimeKind::kIncident, RegimeKind::kClosure, RegimeKind::kRushHourShift,
      RegimeKind::kSeasonalDemand};
  rng.Shuffle(kinds);
  for (const RegimeKind kind : kinds) {
    RegimeShiftConfig shift;
    shift.kind = kind;
    shift.seed = rng.NextU64();
    shift.edge_fraction = rng.Uniform(0.02, 0.08);
    shift.speed_scale = rng.Uniform(0.25, 0.5);
    shift.hour_shift = rng.Bernoulli(0.5) ? rng.Uniform(0.5, 2.0)
                                          : -rng.Uniform(0.5, 2.0);
    shift.demand_scale = rng.Bernoulli(0.5) ? rng.Uniform(1.2, 1.8)
                                            : rng.Uniform(0.5, 0.9);
    city.shifts.push_back(shift);
  }
  return city;
}

CityFleet::CityFleet(const FleetConfig& config) {
  TPR_CHECK(config.num_cities > 0);
  cities_.reserve(static_cast<size_t>(config.num_cities));
  for (int id = 0; id < config.num_cities; ++id) {
    cities_.push_back(MakeFleetCity(config.seed, config.dataset_scale, id));
  }
}

const FleetCity& CityFleet::city(int city_id) const {
  TPR_CHECK(city_id >= 0 && city_id < size());
  return cities_[static_cast<size_t>(city_id)];
}

StatusOr<CityDataset> CityFleet::BuildDataset(int city_id) const {
  return BuildPresetDataset(city(city_id).preset);
}

}  // namespace tpr::synth
