#ifndef TPR_SYNTH_PRESETS_H_
#define TPR_SYNTH_PRESETS_H_

#include <string>
#include <vector>

#include "synth/city_generator.h"
#include "synth/dataset.h"
#include "synth/traffic_model.h"

namespace tpr::synth {

/// A fully specified synthetic city standing in for one of the paper's
/// datasets (Aalborg / Harbin / Chengdu analogues).
struct CityPreset {
  std::string name;
  CityConfig city;
  TrafficConfig traffic;
  DatasetConfig data;
};

/// Aalborg analogue: a sparser, suburban Scandinavian city — wider blocks,
/// milder peaks, short travel times.
CityPreset AalborgPreset();

/// Harbin analogue: a dense northern Chinese city — heavy peak congestion,
/// many signals.
CityPreset HarbinPreset();

/// Chengdu analogue: the densest network — small blocks, many one-way
/// streets, strong but wide peaks.
CityPreset ChengduPreset();

/// The three presets in the paper's order.
std::vector<CityPreset> AllPresets();

/// Scales the dataset sizes of a preset by `factor` (used to trade bench
/// runtime for fidelity). Keeps at least a handful of samples.
void ScaleDataset(CityPreset& preset, double factor);

/// Generates network + traffic model + dataset for a preset.
StatusOr<CityDataset> BuildPresetDataset(const CityPreset& preset);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_PRESETS_H_
