#include "synth/gps.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/shortest_path.h"

namespace tpr::synth {
namespace {

struct Candidate {
  int edge_id;
  double emission_log_prob;
};

}  // namespace

double PointToEdgeDistance(const graph::RoadNetwork& network, int edge_id,
                           double x, double y) {
  const auto& e = network.edge(edge_id);
  const auto& a = network.node(e.from);
  const auto& b = network.node(e.to);
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0) {
    t = ((x - a.x) * dx + (y - a.y) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double px = a.x + t * dx, py = a.y + t * dy;
  return std::hypot(x - px, y - py);
}

std::vector<GpsPoint> SynthesizeTrace(const graph::RoadNetwork& network,
                                      const TrafficModel& traffic,
                                      const graph::Path& path,
                                      double depart_time_s,
                                      const GpsConfig& config, Rng& rng) {
  std::vector<GpsPoint> trace;
  double t = depart_time_s;
  double next_fix = depart_time_s;
  for (int eid : path) {
    const auto& e = network.edge(eid);
    const auto& a = network.node(e.from);
    const auto& b = network.node(e.to);
    const double travel = traffic.TravelTime(eid, t);
    // Emit fixes due while traversing this edge (linear interpolation).
    while (next_fix <= t + travel) {
      const double frac = travel > 0 ? (next_fix - t) / travel : 0.0;
      GpsPoint p;
      p.x = a.x + frac * (b.x - a.x) + rng.Gaussian(0.0, config.noise_m);
      p.y = a.y + frac * (b.y - a.y) + rng.Gaussian(0.0, config.noise_m);
      p.t = next_fix;
      trace.push_back(p);
      next_fix += config.sample_interval_s;
    }
    t += travel;
  }
  return trace;
}

StatusOr<graph::Path> MapMatch(const graph::RoadNetwork& network,
                               const std::vector<GpsPoint>& trace,
                               const GpsConfig& config) {
  if (trace.empty()) return Status::InvalidArgument("empty trace");
  // Fix timestamps must be non-decreasing and finite: an out-of-order or
  // NaN clock means the trace was corrupted in transit, and matching it
  // would silently produce a path for a trajectory that never happened.
  for (size_t i = 0; i < trace.size(); ++i) {
    if (!std::isfinite(trace[i].t)) {
      return Status::InvalidArgument("non-finite timestamp at fix " +
                                     std::to_string(i));
    }
    if (i > 0 && trace[i].t < trace[i - 1].t) {
      return Status::InvalidArgument(
          "non-monotone timestamps at fix " + std::to_string(i) + " (" +
          std::to_string(trace[i].t) + " < " +
          std::to_string(trace[i - 1].t) + ")");
    }
  }
  const double sigma = std::max(1.0, config.noise_m);

  // Candidate edges per fix (brute force; networks here are small).
  std::vector<std::vector<Candidate>> candidates(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    for (int eid = 0; eid < network.num_edges(); ++eid) {
      const double d =
          PointToEdgeDistance(network, eid, trace[i].x, trace[i].y);
      if (d <= config.candidate_radius_m) {
        candidates[i].push_back({eid, -0.5 * (d / sigma) * (d / sigma)});
      }
    }
    if (candidates[i].empty()) {
      return Status::NotFound("GPS fix " + std::to_string(i) +
                              " has no candidate edges");
    }
  }

  // Viterbi.
  const double log_adjacent = 0.0;
  const double log_jump = std::log(std::max(1e-6, config.transition_penalty));
  std::vector<std::vector<double>> score(trace.size());
  std::vector<std::vector<int>> back(trace.size());
  score[0].resize(candidates[0].size());
  back[0].assign(candidates[0].size(), -1);
  for (size_t c = 0; c < candidates[0].size(); ++c) {
    score[0][c] = candidates[0][c].emission_log_prob;
  }
  for (size_t i = 1; i < trace.size(); ++i) {
    score[i].assign(candidates[i].size(),
                    -std::numeric_limits<double>::infinity());
    back[i].assign(candidates[i].size(), -1);
    for (size_t c = 0; c < candidates[i].size(); ++c) {
      const auto& cur = network.edge(candidates[i][c].edge_id);
      for (size_t p = 0; p < candidates[i - 1].size(); ++p) {
        const auto& prev = network.edge(candidates[i - 1][p].edge_id);
        double log_trans;
        if (prev.id == cur.id || prev.to == cur.from) {
          log_trans = log_adjacent;
        } else {
          log_trans = log_jump;
        }
        const double s = score[i - 1][p] + log_trans +
                         candidates[i][c].emission_log_prob;
        if (s > score[i][c]) {
          score[i][c] = s;
          back[i][c] = static_cast<int>(p);
        }
      }
    }
  }

  // Backtrack.
  size_t best = 0;
  for (size_t c = 1; c < score.back().size(); ++c) {
    if (score.back()[c] > score.back()[best]) best = c;
  }
  std::vector<int> matched(trace.size());
  int cur = static_cast<int>(best);
  for (size_t i = trace.size(); i-- > 0;) {
    matched[i] = candidates[i][cur].edge_id;
    cur = back[i][cur];
  }

  // Collapse repeats and close gaps with shortest-path interpolation.
  graph::Path path;
  for (int eid : matched) {
    if (!path.empty() && path.back() == eid) continue;
    if (!path.empty()) {
      const auto& prev = network.edge(path.back());
      const auto& next = network.edge(eid);
      if (prev.to != next.from) {
        auto bridge = graph::ShortestPath(
            network, prev.to, next.from,
            [&network](int e) { return network.edge(e).length_m; });
        if (bridge.ok()) {
          for (int b : bridge->edges) {
            if (path.back() != b) path.push_back(b);
          }
        }
      }
      if (network.edge(path.back()).to != next.from) {
        // Bridge failed (e.g., one-way trap): drop this fix's edge.
        continue;
      }
    }
    path.push_back(eid);
  }
  if (path.empty()) return Status::NotFound("map matching produced no path");
  return path;
}

}  // namespace tpr::synth
