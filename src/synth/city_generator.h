#ifndef TPR_SYNTH_CITY_GENERATOR_H_
#define TPR_SYNTH_CITY_GENERATOR_H_

#include <cstdint>

#include "graph/road_network.h"
#include "util/status.h"

namespace tpr::synth {

/// Parameters for the synthetic city road-network generator. The generator
/// lays out a jittered grid of intersections, classifies streets into a
/// hierarchy (ring highway, primary arterials, secondary connectors,
/// residential streets), assigns lanes / one-way flags / signals, and
/// derives a congestion zone from the distance to the city center.
struct CityConfig {
  int grid_width = 16;        // intersections per row
  int grid_height = 16;       // intersections per column
  double spacing_m = 250.0;   // mean distance between intersections
  double jitter_m = 40.0;     // coordinate noise
  double drop_edge_prob = 0.08;  // fraction of grid streets removed
  double one_way_prob = 0.15;
  double signal_prob_major = 0.55;  // signals on primary/secondary
  double signal_prob_minor = 0.15;
  int arterial_every = 4;     // every k-th row/column is an arterial
  bool ring_highway = true;   // build a highway ring around the center
  uint64_t seed = 7;
};

/// Generates a connected road network per the config. Every remaining
/// street becomes two directed edges unless sampled one-way. Returns
/// InvalidArgument for degenerate grids.
StatusOr<graph::RoadNetwork> GenerateCity(const CityConfig& config);

}  // namespace tpr::synth

#endif  // TPR_SYNTH_CITY_GENERATOR_H_
