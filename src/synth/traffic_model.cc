#include "synth/traffic_model.h"

#include <algorithm>
#include <cmath>

namespace tpr::synth {
namespace {

constexpr double kDayS = 24.0 * 3600.0;
constexpr double kWeekS = 7.0 * kDayS;

// Smooth bump that rises from 0 at `start`, peaks at 1 in the middle, and
// falls back to 0 at `end` (raised-cosine).
double Bump(double hour, double start, double end) {
  if (hour <= start || hour >= end) return 0.0;
  const double x = (hour - start) / (end - start);  // in (0, 1)
  return 0.5 * (1.0 - std::cos(2.0 * M_PI * x));
}

}  // namespace

double BaseSpeedForType(graph::RoadType type) {
  switch (type) {
    case graph::RoadType::kHighway:
      return 25.0;  // 90 km/h
    case graph::RoadType::kPrimary:
      return 16.7;  // 60 km/h
    case graph::RoadType::kSecondary:
      return 13.9;  // 50 km/h
    case graph::RoadType::kTertiary:
      return 11.1;  // 40 km/h
    case graph::RoadType::kResidential:
      return 8.3;   // 30 km/h
  }
  return 8.3;
}

double TrafficModel::FreeFlowSpeed(int edge_id) const {
  const auto& e = network_->edge(edge_id);
  const double base = BaseSpeedForType(e.road_type);
  double speed = base * (1.0 + config_.lane_speed_bonus * (e.num_lanes - 1));
  if (regime_) speed *= regime_->EdgeScale(edge_id);
  return speed;
}

double TrafficModel::PeakIntensity(double time_s) const {
  double t = std::fmod(time_s, kWeekS);
  if (t < 0) t += kWeekS;
  const int day = static_cast<int>(t / kDayS);  // 0 = Monday
  const double hour = (t - day * kDayS) / 3600.0;
  const bool weekday = day < 5;
  const double am_shift = regime_ ? regime_->am_shift_h : 0.0;
  const double pm_shift = regime_ ? regime_->pm_shift_h : 0.0;
  if (weekday) {
    const double am = Bump(hour, config_.am_start_h + am_shift,
                           config_.am_end_h + am_shift);
    const double pm = Bump(hour, config_.pm_start_h + pm_shift,
                           config_.pm_end_h + pm_shift);
    return std::max(am, pm);
  }
  // Weekends: a mild midday bump (shopping traffic).
  return config_.weekend_factor * Bump(hour, 11.0, 15.0);
}

double TrafficModel::CongestionMultiplier(int edge_id, double time_s) const {
  const auto& e = network_->edge(edge_id);
  const int zone = std::clamp(e.zone, 0, 2);
  // Highways feel peak congestion strongly as well (commuter load), which
  // reproduces the paper's Fig. 1 behaviour of highway avoidance at 8 a.m.
  double class_factor = 1.0;
  if (e.road_type == graph::RoadType::kHighway) class_factor = 1.15;
  double severity = config_.peak_severity;
  if (regime_) severity *= regime_->severity_scale;
  const double drop = severity * config_.zone_factor[zone] *
                      class_factor * PeakIntensity(time_s);
  return std::max(0.15, 1.0 - drop);
}

double TrafficModel::TravelTime(int edge_id, double time_s) const {
  const auto& e = network_->edge(edge_id);
  const double speed = FreeFlowSpeed(edge_id) *
                       CongestionMultiplier(edge_id, time_s);
  double t = e.length_m / speed;
  if (e.has_signal) {
    // Signals hurt more under congestion (longer queues).
    t += config_.signal_delay_s *
         (1.0 + PeakIntensity(time_s));
  }
  return t;
}

double TrafficModel::PathTravelTime(const graph::Path& path,
                                    double depart_time_s) const {
  double t = depart_time_s;
  for (int eid : path) t += TravelTime(eid, t);
  return t - depart_time_s;
}

double TrafficModel::CityCongestionIndex(double time_s) const {
  return PeakIntensity(time_s);
}

}  // namespace tpr::synth
