#include "synth/weak_labels.h"

#include "util/logging.h"

namespace tpr::synth {
namespace {
constexpr int64_t kDayS = 24 * 3600;
constexpr int64_t kWeekS = 7 * kDayS;
}  // namespace

int PopWeakLabel(int64_t depart_time_s) {
  int64_t t = depart_time_s % kWeekS;
  if (t < 0) t += kWeekS;
  const int day = static_cast<int>(t / kDayS);
  const double hour = static_cast<double>(t % kDayS) / 3600.0;
  const bool weekday = day < 5;
  if (weekday && hour >= 7.0 && hour < 9.0) return kMorningPeak;
  if (weekday && hour >= 16.0 && hour < 19.0) return kAfternoonPeak;
  return kOffPeak;
}

int TciWeakLabel(const TrafficModel& model, int64_t depart_time_s) {
  const double c = model.CityCongestionIndex(static_cast<double>(depart_time_s));
  if (c < 0.15) return 0;  // free flow
  if (c < 0.45) return 1;  // light congestion
  if (c < 0.75) return 2;  // moderate congestion
  return 3;                // heavy congestion
}

int WeakLabelFor(WeakLabelScheme scheme, const TrafficModel& model,
                 int64_t depart_time_s) {
  switch (scheme) {
    case WeakLabelScheme::kPeakOffPeak:
      return PopWeakLabel(depart_time_s);
    case WeakLabelScheme::kCongestionIndex:
      return TciWeakLabel(model, depart_time_s);
  }
  TPR_FATAL() << "unknown weak label scheme";
}

int NumWeakLabels(WeakLabelScheme scheme) {
  switch (scheme) {
    case WeakLabelScheme::kPeakOffPeak:
      return kNumPopLabels;
    case WeakLabelScheme::kCongestionIndex:
      return kNumTciLabels;
  }
  TPR_FATAL() << "unknown weak label scheme";
}

}  // namespace tpr::synth
