// Multi-city fleet soak for `tpr::route`: sharded serving behind the
// deterministic routing tier, under targeted faults.
//
//   scaling    — the batched serving path at 1 shard vs N shards (one
//                single-worker service per shard, requests pipelined
//                through the router round-robin over cities). On a
//                machine with >= N cores the fleet should scale near
//                linearly; `fleet.scaling_ratio` carries the measured
//                N-shard / 1-shard req/s ratio into the gate.
//   isolation  — two full passes over fresh per-shard stacks (service +
//                rollout + drift adaptation per city, all namespaced
//                under <root>/shard-<city>/):
//                  clean  — no fault plan, no regime shift; every shard
//                           serves the same fixed request schedule.
//                  bombed — shard 0 takes encoder-forward +
//                           route-dispatch faults, a torn first rollout
//                           publish, AND a regime shift that trips its
//                           drift detector into a fine-tune republish —
//                           while shards 1..N-1 run the identical
//                           schedule untouched.
//                The bench asserts the healthy shards' full request
//                traces (route error, status, rung, generation,
//                embedding bytes) are BYTE-IDENTICAL across the two
//                passes: fault isolation is bitwise, not statistical.
//
// stdout carries only the deterministic trace so run_benches.sh can
// `cmp` TPR_THREADS=1 and =4 runs byte for byte; timing goes to stderr
// and the JSON record. With TPR_FAULT set (the CI fleet-soak leg), the
// env plan replaces the built-in bombed-pass plan — it must target only
// @shard0-qualified sites, or the isolation check will rightly fail.

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/probe.h"
#include "drift/adaptation.h"
#include "drift/detector.h"
#include "fault/fault.h"
#include "harness.h"
#include "route/router.h"
#include "route/shard.h"
#include "synth/fleet.h"
#include "synth/regime.h"

namespace tpr::bench {
namespace {

bool EnvFaultMode() { return std::getenv("TPR_FAULT") != nullptr; }

/// Worker threads per shard service: the soak follows TPR_THREADS so the
/// 1-vs-4 determinism cmp actually varies the worker count.
int ShardWorkers() { return std::max(1, par::ConfiguredThreads()); }

uint64_t Fnv1a(const void* data, size_t n, uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 0x100000001b3ull;
  return h;
}

/// One request's trace line: everything the determinism contract
/// covers, nothing it does not (no latency, no queue depth).
std::string TraceLine(uint64_t id, const route::RouteResult& r) {
  std::string line = "req " + HexId(id) + " " + RouteErrorName(r.error) +
                     " code=" + std::to_string(static_cast<int>(r.status.code()));
  if (r.status.ok()) {
    line += " rung=" + std::string(serve::RungName(r.serve.rung)) + " gen=" +
            std::to_string(r.serve.generation) + " emb=" +
            HexId(Fnv1a(r.serve.embedding.data(),
                        r.serve.embedding.size() * sizeof(float)));
  }
  return line + "\n";
}

struct ShardTraffic {
  uint64_t seq = 0;            // per-city id sequence
  long ok = 0;
  long errors = 0;             // any non-OK outcome (injected or not)
  std::string trace;           // cmp'd across passes for healthy shards
};

/// One closed-loop batch of `n` requests for `city`, pipelined through
/// the router. Ids are per-city (`(city+1)<<32 | seq`), so a shard's
/// verdict stream never depends on the other shards' traffic.
void RunBatch(route::Router& router, int city,
              const std::vector<synth::TemporalPathSample>& samples, int n,
              ShardTraffic* t) {
  struct Pending {
    uint64_t id;
    route::RoutedSubmit sub;
  };
  std::deque<Pending> pending;
  auto drain_one = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    route::RouteResult r;
    r.city_id = city;
    r.error = p.sub.error;
    r.shard_index = p.sub.shard_index;
    r.status = std::move(p.sub.status);
    if (r.status.ok()) {
      r.serve = p.sub.result.get();
      r.status = r.serve.status;
    }
    r.status.ok() ? ++t->ok : ++t->errors;
    t->trace += TraceLine(p.id, r);
  };
  for (int i = 0; i < n; ++i) {
    const uint64_t id =
        (static_cast<uint64_t>(city + 1) << 32) | t->seq++;
    const auto& sample = samples[static_cast<size_t>(id % samples.size())];
    route::CityRequest req;
    req.city_id = city;
    req.query.path = sample.path;
    req.query.depart_time_s = sample.depart_time_s + (id % 7) * 450;
    req.query.id = id;
    pending.push_back({id, router.Submit(req)});
    while (pending.size() >= 8) drain_one();
  }
  while (!pending.empty()) drain_one();
}

void PrintEvents(const char* who, const std::vector<std::string>& events) {
  for (const std::string& e : events) {
    std::string line = e;
    // Promotion resolutions embed a routed-request tally that races
    // worker interleaving; truncate for a thread-invariant trace.
    if (line.find("promoted") != std::string::npos) {
      const size_t cut = line.find(" (");
      if (cut != std::string::npos) line.resize(cut);
    }
    // Publish failures name the per-run temp dir (embeds the pid).
    const size_t path = line.find(" in /");
    if (path != std::string::npos) line.resize(path);
    std::printf("[trace] %s: %s\n", who, line.c_str());
  }
}

/// One fully prepared fleet city (dataset + features are built once and
/// shared by every pass — they are immutable).
struct FleetWorld {
  synth::FleetCity city;
  std::shared_ptr<synth::CityDataset> data;
  std::shared_ptr<const core::FeatureSpace> features;
  core::ProbeSet probe;
};

std::vector<FleetWorld> PrepareFleet(const synth::CityFleet& fleet) {
  std::vector<FleetWorld> worlds;
  for (const synth::FleetCity& city : fleet.cities()) {
    std::fprintf(stderr, "[bench] preparing %s...\n", city.name.c_str());
    auto ds = fleet.BuildDataset(city.city_id);
    TPR_CHECK(ds.ok()) << ds.status().ToString();
    FleetWorld w;
    w.city = city;
    w.data = std::make_shared<synth::CityDataset>(std::move(*ds));
    auto fs = core::BuildFeatureSpace(w.data, DefaultFeatureConfig());
    TPR_CHECK(fs.ok()) << fs.status().ToString();
    w.features = std::make_shared<const core::FeatureSpace>(std::move(*fs));
    w.probe = core::BuildProbeSet(*w.data, Smoke() ? 32 : 64, 7);
    TPR_CHECK(!w.data->unlabeled.empty());
    worlds.push_back(std::move(w));
  }
  return worlds;
}

core::EncoderConfig FleetEncoder() {
  core::EncoderConfig cfg;
  if (Smoke()) {
    cfg.d_hidden = 32;
    cfg.lstm_layers = 1;
  }
  return cfg;
}

serve::ServiceConfig FleetService(int num_workers, int batch_max) {
  serve::ServiceConfig cfg;
  cfg.num_workers = num_workers;
  cfg.queue_capacity = 64;
  cfg.block_when_full = true;
  cfg.max_retries = 2;
  cfg.backoff_base_ms = 0.2;
  cfg.backoff_max_ms = 5.0;
  cfg.cache_capacity = 512;
  cfg.time_bucket_s = 900;
  cfg.batch_max = batch_max;
  cfg.canary_permille = 250;
  cfg.canary_promote_after = Smoke() ? 16 : 64;
  return cfg;
}

// ---------------------------------------------------------------------------
// Scaling phase: batched req/s at 1 shard vs N shards.
// ---------------------------------------------------------------------------

double MeasureFleetRps(const std::vector<FleetWorld>& worlds, int num_shards,
                       int requests_per_shard) {
  const core::EncoderConfig encoder_config = FleetEncoder();
  std::vector<std::unique_ptr<serve::InferenceService>> services;
  std::vector<route::ShardEndpoint> eps;
  for (int c = 0; c < num_shards; ++c) {
    const FleetWorld& w = worlds[static_cast<size_t>(c)];
    // One worker per shard: throughput scaling must come from shard
    // parallelism, which is exactly what the gate measures.
    serve::ServiceConfig sc = FleetService(/*num_workers=*/1,
                                           /*batch_max=*/8);
    sc.shard = "scale" + std::to_string(c);
    sc.metrics_prefix = sc.shard + ".";
    auto svc = std::make_unique<serve::InferenceService>(
        w.features, encoder_config, sc);
    svc->InstallModel(std::make_shared<core::TemporalPathEncoder>(
                          w.features, encoder_config),
                      1);
    TPR_CHECK(svc->Start().ok());
    eps.push_back({c, sc.shard, svc.get()});
    services.push_back(std::move(svc));
  }
  route::Router router(std::move(eps), route::RouterConfig{});

  // Closed loop over all shards round-robin, deep enough to keep every
  // shard's batch former fed.
  struct Pending {
    std::future<serve::ServeResult> f;
  };
  std::deque<Pending> pending;
  const size_t depth = static_cast<size_t>(16 * num_shards);
  const int total = requests_per_shard * num_shards;
  long ok = 0;
  Stopwatch sw;
  for (int i = 0; i < total; ++i) {
    const int city = i % num_shards;
    const FleetWorld& w = worlds[static_cast<size_t>(city)];
    const auto& samples = w.data->unlabeled;
    route::CityRequest req;
    req.city_id = city;
    const auto& sample = samples[static_cast<size_t>(i) % samples.size()];
    req.query.path = sample.path;
    req.query.depart_time_s = sample.depart_time_s + (i % 5) * 600;
    req.query.id = (static_cast<uint64_t>(city + 1) << 32) | i;
    route::RoutedSubmit sub = router.Submit(req);
    TPR_CHECK(sub.status.ok()) << sub.status.ToString();
    pending.push_back({std::move(sub.result)});
    while (pending.size() >= depth) {
      if (pending.front().f.get().status.ok()) ++ok;
      pending.pop_front();
    }
  }
  while (!pending.empty()) {
    if (pending.front().f.get().status.ok()) ++ok;
    pending.pop_front();
  }
  const double seconds = sw.ElapsedSeconds();
  TPR_CHECK(ok == total) << (total - ok) << " scaling-phase failures";
  for (auto& svc : services) svc->Shutdown();
  return static_cast<double>(total) / seconds;
}

// ---------------------------------------------------------------------------
// Isolation soak.
// ---------------------------------------------------------------------------

struct PassResult {
  std::vector<ShardTraffic> traffic;  // per city
  uint64_t shard0_live_gen = 0;
};

/// One full pass: fresh shard stacks under `root`, bootstrap gen 1 per
/// shard, then a fixed request schedule interleaved with control ticks.
/// `bombed` arms the fault plan + shard 0's regime shift.
PassResult RunPass(const std::vector<FleetWorld>& worlds,
                   const std::string& root, bool bombed) {
  const int n = static_cast<int>(worlds.size());
  const core::EncoderConfig encoder_config = FleetEncoder();

  fault::ClearPlan();
  if (bombed) {
    if (EnvFaultMode()) {
      TPR_CHECK(fault::InstallPlanFromEnv().ok());
      std::printf("[trace] pass bombed: fault plan from TPR_FAULT\n");
    } else {
      auto plan = fault::FaultPlan::Parse(
          "encoder-forward@shard0:p=0.7,seed=41;"
          "route-dispatch@shard0:p=0.25,seed=43;"
          "rollout-publish@shard0:after=0,until=1");
      TPR_CHECK(plan.ok()) << plan.status().ToString();
      fault::InstallPlan(*std::move(plan));
      std::printf("[trace] pass bombed: built-in @shard0 fault plan\n");
    }
  } else {
    std::printf("[trace] pass clean: no faults\n");
  }

  core::WscConfig wsc;
  wsc.encoder = encoder_config;
  wsc.anchors_per_batch = Smoke() ? 6 : 12;

  std::vector<std::unique_ptr<route::CityShard>> shards;
  std::vector<route::ShardEndpoint> eps;
  for (int c = 0; c < n; ++c) {
    const FleetWorld& w = worlds[static_cast<size_t>(c)];
    route::CityShardConfig cfg;
    cfg.city_id = c;
    cfg.root = root;
    cfg.service = FleetService(ShardWorkers(), /*batch_max=*/0);
    cfg.rollout.quality_budget = 0.50;
    cfg.rollout.quantize_twins = false;
    cfg.enable_drift = true;
    cfg.detector.window = 2;
    cfg.detector.delta = 0.01;
    cfg.detector.lambda = 0.20;
    cfg.detector.min_windows = 2;
    cfg.detector.cooldown_windows = 1;
    cfg.adaptation.wsc = wsc;
    cfg.adaptation.total_epochs = Smoke() ? 2 : 3;
    cfg.adaptation.probe_queries = Smoke() ? 32 : 64;
    auto shard = std::make_unique<route::CityShard>(
        w.features, encoder_config, w.probe, cfg);
    TPR_CHECK(shard->Init().ok());
    // Gen 1 bootstraps straight to live through the rollout gate.
    core::TemporalPathEncoder gen1(w.features, encoder_config);
    TPR_CHECK(serve::InferenceService::SaveModel(gen1, shard->model_dir(), 1)
                  .ok());
    auto report = shard->rollout().Tick();
    TPR_CHECK(report.ok()) << report.status().ToString();
    PrintEvents(shard->name().c_str(), report->events);
    TPR_CHECK(shard->service().model_generation() == 1);
    TPR_CHECK(shard->service().Start().ok());
    eps.push_back(shard->endpoint());
    shards.push_back(std::move(shard));
  }
  route::Router router(std::move(eps), route::RouterConfig{});

  PassResult result;
  result.traffic.resize(static_cast<size_t>(n));

  // Shard 0's drift story (bombed pass only): its fleet-scheduled
  // incident shift lands after the first quarter of the schedule.
  const FleetWorld& w0 = worlds[0];
  synth::RegimeShiftConfig shift_cfg = w0.city.shifts[0];
  shift_cfg.kind = synth::RegimeKind::kIncident;  // guaranteed degradation
  const synth::RegimeShift shift =
      synth::MakeRegimeShift(*w0.data->network, shift_cfg);
  std::shared_ptr<const synth::CityDataset> fresh0;
  core::ProbeSet probe0_now;
  double degraded_mae = 0.0;
  double quiet_mae = 0.0;
  {
    auto live = shards[0]->service().live_model();
    auto mae = core::ProbeTravelTimeMae(*live, w0.probe);
    TPR_CHECK(mae.ok()) << mae.status().ToString();
    quiet_mae = *mae;
  }

  // Pin shard 0's Page–Hinkley baseline on the quiet world before any
  // traffic: with only a handful of pre-shift windows the running mean
  // would absorb the degraded windows and the statistic plateaus under
  // lambda. Identical in both passes (clean pass never alarms anyway).
  for (int i = 0; i < (Smoke() ? 24 : 48); ++i) {
    shards[0]->adaptation()->ObserveProbeMae(quiet_mae);
  }

  const int rounds = Smoke() ? 12 : 24;
  const int per_round = Smoke() ? 8 : 32;
  const int shift_round = rounds / 4;
  bool shifted = false;
  bool fine_tune_done = false;
  uint64_t candidate = 0;

  for (int round = 0; round < rounds; ++round) {
    // Fixed request schedule: every shard serves the same batches in
    // the same order in every pass, whatever the control plane does.
    for (int c = 0; c < n; ++c) {
      RunBatch(router, c, worlds[static_cast<size_t>(c)].data->unlabeled,
               per_round, &result.traffic[static_cast<size_t>(c)]);
    }

    // Control plane. Healthy shards observe a quiet world every round;
    // shard 0's observations degrade after the shift (bombed pass).
    for (int c = 1; c < n; ++c) {
      auto* adapt = shards[static_cast<size_t>(c)]->adaptation();
      auto live = shards[static_cast<size_t>(c)]->service().live_model();
      auto mae = core::ProbeTravelTimeMae(
          *live, worlds[static_cast<size_t>(c)].probe);
      TPR_CHECK(mae.ok()) << mae.status().ToString();
      adapt->ObserveProbeMae(*mae);
    }

    if (bombed && round == shift_round && !shifted) {
      shifted = true;
      synth::DatasetConfig fresh_cfg;
      fresh_cfg.num_unlabeled_trajectories = Smoke() ? 48 : 240;
      fresh_cfg.departures_per_trajectory = 2;
      fresh_cfg.num_labeled_groups = Smoke() ? 24 : 96;
      fresh_cfg.alternatives_per_group = 2;
      fresh_cfg.seed = 9001;
      auto shifted_ds =
          synth::GenerateShiftedDataset(*w0.data, shift, fresh_cfg);
      TPR_CHECK(shifted_ds.ok()) << shifted_ds.status().ToString();
      fresh0 = std::make_shared<const synth::CityDataset>(
          std::move(*shifted_ds));
      probe0_now = drift::RelabelProbeSet(w0.probe, *fresh0->traffic);
      auto live = shards[0]->service().live_model();
      auto mae = core::ProbeTravelTimeMae(*live, probe0_now);
      TPR_CHECK(mae.ok()) << mae.status().ToString();
      degraded_mae = *mae;
      std::printf(
          "[trace] shard0: regime shift (%s) landed, probe mae %.12g -> "
          "%.12g\n",
          synth::RegimeKindName(shift_cfg.kind), quiet_mae, degraded_mae);
    }

    auto* adapt0 = shards[0]->adaptation();
    if (!shifted) {
      adapt0->ObserveProbeMae(quiet_mae);
    } else if (!fine_tune_done) {
      // Feed degraded observations until the alarm, then tick the
      // fine-tune forward; rollout ticks below pick up the candidate.
      if (!adapt0->detector().alarmed() &&
          adapt0->state() == drift::AdaptState::kIdle) {
        for (int i = 0; i < 8 && !adapt0->ObserveProbeMae(degraded_mae); ++i) {
        }
        if (adapt0->detector().alarmed()) {
          std::printf("[trace] shard0: drift detector alarmed\n");
        }
      }
      auto report = adapt0->Tick(fresh0);
      if (!report.ok()) {
        TPR_CHECK(EnvFaultMode()) << report.status().ToString();
        std::printf("[trace] shard0: adapt tick error tolerated: %s\n",
                    report.status().ToString().c_str());
      } else {
        PrintEvents("shard0.adapt", report->events);
        if (report->published) {
          candidate = adapt0->candidate_generation();
          fine_tune_done = true;
        }
      }
    } else if (adapt0->state() != drift::AdaptState::kIdle) {
      auto report = adapt0->Tick(fresh0);
      if (report.ok()) PrintEvents("shard0.adapt", report->events);
    }

    // Every shard's rollout controller ticks every round — quiet shards
    // report nothing, shard 0 walks its candidate through canary ->
    // promote (with its first manifest publish torn by the plan).
    for (int c = 0; c < n; ++c) {
      auto report = shards[static_cast<size_t>(c)]->rollout().Tick();
      TPR_CHECK(report.ok()) << report.status().ToString();
      PrintEvents(shards[static_cast<size_t>(c)]->name().c_str(),
                  report->events);
    }
  }

  // Drain shard 0's rollout to a terminal state for the candidate.
  if (bombed && candidate != 0) {
    for (int tick = 0; tick < 32; ++tick) {
      auto rec = shards[0]->rollout().manifest().Find(candidate);
      if (rec != nullptr && (rec->state == rollout::ModelState::kLive ||
                             rec->state == rollout::ModelState::kRetired ||
                             rec->state == rollout::ModelState::kQuarantined)) {
        break;
      }
      RunBatch(router, 0, w0.data->unlabeled, per_round,
               &result.traffic[0]);
      auto report = shards[0]->rollout().Tick();
      TPR_CHECK(report.ok()) << report.status().ToString();
      PrintEvents("shard0", report->events);
    }
  }

  result.shard0_live_gen = shards[0]->service().model_generation();
  for (auto& shard : shards) shard->service().Shutdown();
  fault::ClearPlan();
  return result;
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);
  obs::SetMetricsEnabled(true);
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  synth::FleetConfig fleet_config;
  fleet_config.num_cities = 3;
  fleet_config.dataset_scale = BenchScale();
  fleet_config = synth::FleetConfigFromEnv(fleet_config);
  const synth::CityFleet fleet(fleet_config);
  std::printf("[trace] fleet: %d cities, seed %llu\n", fleet.size(),
              static_cast<unsigned long long>(fleet_config.seed));
  const std::vector<FleetWorld> worlds = PrepareFleet(fleet);
  TPR_CHECK(fleet.size() >= 2) << "fleet soak needs at least 2 shards";

  // ---- Scaling phase (timing only: nothing here enters the trace). ----
  const int scale_requests = Smoke() ? 192 : 1024;
  std::fprintf(stderr, "[bench] scaling: 1 shard...\n");
  const double single_rps = MeasureFleetRps(worlds, 1, scale_requests);
  std::fprintf(stderr, "[bench] scaling: %d shards...\n", fleet.size());
  const double fleet_rps =
      MeasureFleetRps(worlds, fleet.size(), scale_requests);
  const double ratio = single_rps > 0 ? fleet_rps / single_rps : 0.0;
  std::fprintf(stderr,
               "[bench] scaling: 1 shard %.1f req/s, %d shards %.1f req/s "
               "(ratio %.2f)\n",
               single_rps, fleet.size(), fleet_rps, ratio);
  Record("fleet.single_shard_rps", single_rps);
  Record("fleet.fleet_rps", fleet_rps);
  Record("fleet.scaling_ratio", ratio);
  Record("fleet.shards", static_cast<double>(fleet.size()));

  // ---- Isolation soak: clean pass, then bombed pass. ----
  const std::string root_base =
      std::filesystem::temp_directory_path().string() + "/tpr-fleet-bench-" +
      std::to_string(::getpid());
  std::filesystem::remove_all(root_base);

  std::fprintf(stderr, "[bench] isolation: clean pass...\n");
  PassResult clean = RunPass(worlds, root_base + "-clean", /*bombed=*/false);
  std::fprintf(stderr, "[bench] isolation: bombed pass...\n");
  PassResult bombed = RunPass(worlds, root_base + "-bombed", /*bombed=*/true);

  long healthy_ok = 0;
  bool isolated = true;
  for (int c = 0; c < fleet.size(); ++c) {
    const ShardTraffic& ct = clean.traffic[static_cast<size_t>(c)];
    const ShardTraffic& bt = bombed.traffic[static_cast<size_t>(c)];
    if (c == 0) {
      std::printf(
          "[trace] shard0: clean ok=%ld err=%ld | bombed ok=%ld err=%ld "
          "live gen %llu -> %llu\n",
          ct.ok, ct.errors, bt.ok, bt.errors,
          static_cast<unsigned long long>(clean.shard0_live_gen),
          static_cast<unsigned long long>(bombed.shard0_live_gen));
      continue;
    }
    const bool identical = ct.trace == bt.trace;
    isolated = isolated && identical;
    healthy_ok += bt.ok;
    std::printf("[trace] shard%d: ok=%ld err=%ld trace %s clean run\n", c,
                bt.ok, bt.errors, identical ? "IDENTICAL to" : "DIVERGED from");
    TPR_CHECK(ct.errors == 0) << "clean pass failures on shard " << c;
    TPR_CHECK(bt.errors == 0)
        << bt.errors << " non-injected failures on healthy shard " << c;
  }
  TPR_CHECK(isolated) << "a healthy shard's trace diverged under @shard0 "
                         "faults — isolation is broken";
  // Clean pass is fault-free everywhere, including shard 0.
  TPR_CHECK(clean.traffic[0].errors == 0)
      << "clean pass failures on shard 0";

  Record("fleet.healthy_requests_ok", static_cast<double>(healthy_ok));
  Record("fleet.isolation_bitwise", isolated ? 1.0 : 0.0);
  Record("fleet.shard0_bombed_errors",
         static_cast<double>(bombed.traffic[0].errors));
  for (const char* counter :
       {"shard0.rollout.publish_torn", "shard0.drift.detections",
        "shard0.drift.publishes", "shard0.rollout.promoted",
        "shard1.rollout.promoted", "shard1.drift.detections"}) {
    Record(counter, static_cast<double>(obs::GetCounter(counter).value()));
  }

  std::printf("\nMulti-city sharded serving under targeted faults\n\n");
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"shards", std::to_string(fleet.size())});
  table.AddRow({"healthy-shard requests ok", std::to_string(healthy_ok)});
  table.AddRow({"bitwise isolation", isolated ? "yes" : "NO"});
  table.AddRow({"shard0 injected-path errors",
                std::to_string(bombed.traffic[0].errors)});
  table.AddRow(
      {"shard0 torn publishes",
       std::to_string(obs::GetCounter("shard0.rollout.publish_torn").value())});
  table.AddRow(
      {"shard0 drift detections",
       std::to_string(obs::GetCounter("shard0.drift.detections").value())});
  table.AddRow({"shard0 live generation",
                std::to_string(bombed.shard0_live_gen)});
  std::printf("%s\n", table.ToString().c_str());

  std::filesystem::remove_all(root_base + "-clean");
  std::filesystem::remove_all(root_base + "-bombed");
  return 0;
}
