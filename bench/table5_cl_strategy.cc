// Reproduces Table V: learned curriculum (WSCCL) vs the heuristic
// curriculum that simply sorts paths by number of edges.

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table V: Effect of the CL Design Strategy\n");
  for (const auto& preset : synth::AllPresets()) {
    PreparedCity city = PrepareCity(preset);

    auto heuristic_cfg = DefaultWsccalConfig();
    heuristic_cfg.curriculum.strategy = core::CurriculumStrategy::kHeuristic;
    std::fprintf(stderr, "[bench] %s heuristic...\n", city.name.c_str());
    const auto heuristic = TrainAndScoreWsccl(city, heuristic_cfg);
    std::fprintf(stderr, "[bench] %s learned...\n", city.name.c_str());
    const auto learned = TrainAndScoreWsccl(city, DefaultWsccalConfig());

    TablePrinter t({"Method", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                    "rho"});
    auto row = [](const std::string& name, const eval::TaskScores& s) {
      return std::vector<std::string>{
          name, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
          TablePrinter::Num(s.tte_mape), TablePrinter::Num(s.pr_mae),
          TablePrinter::Num(s.pr_tau), TablePrinter::Num(s.pr_rho)};
    };
    t.AddRow(row("Heuristic", heuristic));
    t.AddRow(row("WSCCL", learned));
    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
  }
  return 0;
}
