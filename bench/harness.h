#ifndef TPR_BENCH_HARNESS_H_
#define TPR_BENCH_HARNESS_H_

// Shared infrastructure for the per-table experiment harnesses. Each
// bench binary regenerates one table or figure of the paper on the three
// synthetic city datasets.
//
// Command-line flags (parsed by Init):
//   --smoke          — tiny preset, few iterations: scales the datasets
//                      down hard and shrinks the curriculum so the whole
//                      binary finishes in seconds. CI runs every bench in
//                      this mode and gates on the emitted metrics.
//
// Environment knobs:
//   TPR_BENCH_SCALE  — scales dataset sizes (default 1.0; 0.5 halves).
//   TPR_BENCH_SEED   — base seed offset for a different repetition.
//   TPR_BENCH_JSON   — when set, a structured JSON record (bench name,
//                      per-metric values, thread count, commit) is
//                      written to this path at process exit.
//   TPR_COMMIT       — commit id stamped into the JSON record (CI sets
//                      this from GITHUB_SHA; empty otherwise).
//   TPR_MODEL_REGISTRY — directory of cached trained models. When set,
//                      TrainAndScoreWsccl first tries to load the
//                      checkpoint keyed by (city, config fingerprint,
//                      scale) instead of retraining, and stores a fresh
//                      checkpoint there after any training run. Entries
//                      that fail validation (torn file, different
//                      config) are ignored and retrained, never trusted.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/features.h"
#include "core/wsccl.h"
#include "eval/downstream.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "synth/presets.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpr::bench {

/// Process-wide bench state (flags + collected metric records). Leaked
/// so the atexit JSON writer can never observe a destroyed object.
struct BenchState {
  std::string name = "bench";  // basename of argv[0]
  bool smoke = false;
  Stopwatch wall;
  std::mutex mu;
  std::vector<std::pair<std::string, double>> records;
};

inline BenchState& State() {
  static BenchState* s = new BenchState();
  return *s;
}

/// True when running in --smoke mode.
inline bool Smoke() { return State().smoke; }

/// Records one named metric value. Safe from any thread. Records are
/// always collected; the file is only written when TPR_BENCH_JSON is set.
inline void Record(const std::string& metric, double value) {
  BenchState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.records.emplace_back(metric, value);
}

inline double BenchScale() {
  const char* s = std::getenv("TPR_BENCH_SCALE");
  const double base = s != nullptr ? std::atof(s) : 1.0;
  // Smoke mode shrinks whatever scale was requested by another 20x.
  return Smoke() ? base * 0.05 : base;
}

inline uint64_t BenchSeedOffset() {
  const char* s = std::getenv("TPR_BENCH_SEED");
  return s != nullptr ? static_cast<uint64_t>(std::atoll(s)) : 0;
}

namespace internal {

inline void WriteBenchJson(const char* path) {
  BenchState& s = State();
  const char* commit = std::getenv("TPR_COMMIT");
  if (commit == nullptr) commit = std::getenv("GITHUB_SHA");
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path);
    return;
  }
  std::lock_guard<std::mutex> lock(s.mu);
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"smoke\": %s,\n"
               "  \"threads\": %d,\n  \"scale\": %.6g,\n"
               "  \"commit\": \"%s\",\n  \"metrics\": {\n",
               s.name.c_str(), s.smoke ? "true" : "false",
               par::ConfiguredThreads(), BenchScale(),
               commit != nullptr ? commit : "");
  std::fprintf(f, "    \"wall_seconds\": %.6g", s.wall.ElapsedSeconds());
  for (const auto& [metric, value] : s.records) {
    std::fprintf(f, ",\n    \"%s\": %.17g", metric.c_str(), value);
  }
  if (s.smoke) {
    // Work counters are machine-independent (unlike wall time), so they
    // make tight regression-gate signals: an op-count jump is an
    // algorithmic perf regression regardless of CI hardware.
    std::fprintf(f, ",\n    \"nn.matmul_ops\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("nn.matmul_ops").value()));
    std::fprintf(f, ",\n    \"nn.adam_steps\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("nn.adam_steps").value()));
    // Checkpoint cost of the run: smoke WSCCL training writes real
    // checkpoints (see TrainAndScoreWsccl), so save counts and byte
    // volume are deterministic; wall time is gated loosely.
    std::fprintf(f, ",\n    \"ckpt.saves\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("ckpt.saves").value()));
    std::fprintf(f, ",\n    \"ckpt.saved_bytes\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("ckpt.saved_bytes").value()));
    std::fprintf(f, ",\n    \"ckpt.save_seconds\": %.17g",
                 obs::GetHistogram("ckpt.save_seconds").sum());
    std::fprintf(f, ",\n    \"ckpt.load_seconds\": %.17g",
                 obs::GetHistogram("ckpt.load_seconds").sum());
    // Allocator health: alloc_bytes counts bytes fetched from the OS
    // (arena misses), hits count freelist reuse. Steady-state training
    // should be nearly all hits; a jump in alloc_bytes means the arena
    // stopped recycling. These wobble slightly with thread scheduling
    // (per-thread warmup), so the baseline gates them loosely.
    std::fprintf(f, ",\n    \"nn.alloc_bytes\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("nn.alloc_bytes").value()));
    std::fprintf(f, ",\n    \"nn.arena_hits\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("nn.arena_hits").value()));
    std::fprintf(f, ",\n    \"nn.arena_misses\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("nn.arena_misses").value()));
    std::fprintf(f, ",\n    \"nn.fused_cell_ops\": %llu",
                 static_cast<unsigned long long>(
                     obs::GetCounter("nn.fused_cell_ops").value()));
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
}

}  // namespace internal

/// Parses bench flags and arms the exit-time JSON record. Call first in
/// every bench main().
inline void Init(int argc, char** argv) {
  BenchState& s = State();
  if (argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    s.name = slash != nullptr ? slash + 1 : argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      s.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", s.name.c_str());
      std::exit(2);
    }
  }
  // Smoke runs always collect metrics so the JSON record can include op
  // counters; full runs keep the zero-overhead default unless the user
  // opts in via TPR_METRICS_OUT.
  if (s.smoke) obs::SetMetricsEnabled(true);
  s.wall.Restart();
  if (std::getenv("TPR_BENCH_JSON") != nullptr) {
    std::atexit([] { internal::WriteBenchJson(std::getenv("TPR_BENCH_JSON")); });
  }
}

/// One fully prepared city: dataset + node2vec feature space.
struct PreparedCity {
  std::string name;
  std::shared_ptr<synth::CityDataset> data;
  std::shared_ptr<const core::FeatureSpace> features;
};

/// Standard feature configuration used by every experiment. Smoke mode
/// coarsens the temporal graph and cheapens node2vec — feature building
/// dominates a tiny run otherwise.
inline core::FeatureConfig DefaultFeatureConfig() {
  core::FeatureConfig fc;
  fc.temporal_graph.slots_per_day = 96;  // 15-minute slots
  fc.node2vec.seed = 42 + BenchSeedOffset();
  if (Smoke()) {
    fc.temporal_graph.slots_per_day = 24;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
  }
  return fc;
}

/// Builds dataset + features for one preset, aborting on failure (benches
/// have no meaningful recovery path).
inline PreparedCity PrepareCity(synth::CityPreset preset) {
  synth::ScaleDataset(preset, BenchScale());
  preset.data.seed += BenchSeedOffset();
  Stopwatch sw;
  auto dataset = synth::BuildPresetDataset(preset);
  TPR_CHECK(dataset.ok()) << dataset.status().ToString();
  PreparedCity city;
  city.name = preset.name;
  city.data = std::make_shared<synth::CityDataset>(std::move(*dataset));
  auto features = core::BuildFeatureSpace(city.data, DefaultFeatureConfig());
  TPR_CHECK(features.ok()) << features.status().ToString();
  city.features =
      std::make_shared<const core::FeatureSpace>(std::move(*features));
  Record(city.name + ".prepare_seconds", sw.ElapsedSeconds());
  return city;
}

/// All three cities in the paper's order (just the first in smoke mode).
inline std::vector<PreparedCity> PrepareAllCities() {
  std::vector<PreparedCity> cities;
  for (auto& preset : synth::AllPresets()) {
    std::fprintf(stderr, "[bench] preparing city %s...\n",
                 preset.name.c_str());
    cities.push_back(PrepareCity(preset));
    if (Smoke()) break;
  }
  return cities;
}

/// Default WSCCL configuration used across experiments (CPU scale).
inline core::WsccalConfig DefaultWsccalConfig() {
  core::WsccalConfig cfg;
  cfg.wsc.seed = 7 + BenchSeedOffset();
  cfg.wsc.encoder.seed = 31 + BenchSeedOffset();
  cfg.curriculum.num_meta_sets = 4;
  cfg.curriculum.expert_epochs = 1;
  cfg.stage_epochs = 1;
  cfg.final_epochs = 2;
  if (Smoke()) {
    cfg.curriculum.num_meta_sets = 2;
    cfg.final_epochs = 1;
  }
  return cfg;
}

inline std::string HexId(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Registry file name of a (city, config, scale) combination. The config
/// fingerprint already covers every training-relevant field including the
/// TPR_BENCH_SEED-offset seeds; scale changes the dataset, so it is part
/// of the key too.
inline std::string RegistryKey(const std::string& city_name,
                               const core::WsccalConfig& config) {
  char scale[32];
  std::snprintf(scale, sizeof scale, "%g", BenchScale());
  return "wsccl-" + city_name + "-" +
         HexId(core::WsccalPipeline::ConfigFingerprint(config)) + "-s" +
         scale + ".tpr";
}

/// Trains WSCCL (or a variant) and evaluates all downstream tasks. The
/// per-city training time, final loss, and headline scores land in the
/// bench JSON record. With TPR_MODEL_REGISTRY set, a cached trained
/// model is loaded instead of retraining (and stored after a fresh
/// train); smoke runs additionally write periodic checkpoints to a
/// per-process temp dir so the save path is exercised and measured.
inline eval::TaskScores TrainAndScoreWsccl(const PreparedCity& city,
                                           const core::WsccalConfig& config) {
  core::WsccalConfig cfg = config;
  const std::string key = RegistryKey(city.name, cfg);
  if (cfg.ckpt_dir.empty()) {
    if (const char* env = std::getenv("TPR_CKPT_DIR")) {
      // Benches train several cities/variants per run; each needs its
      // own checkpoint directory or the trainer would (correctly)
      // refuse the previous model's fingerprint.
      cfg.ckpt_dir = std::string(env) + "/" + key;
    } else if (Smoke()) {
      // Fresh per process, so reruns never resume and results stay
      // identical to an uncheckpointed run.
      cfg.ckpt_dir = std::filesystem::temp_directory_path().string() +
                     "/tpr-smoke-ckpt-" + std::to_string(::getpid()) + "/" +
                     key;
    }
  }

  std::unique_ptr<core::WsccalPipeline> model;
  std::string registry_path;
  if (const char* reg = std::getenv("TPR_MODEL_REGISTRY")) {
    registry_path = std::string(reg) + "/" + key;
    auto bytes = ckpt::ReadFileBytes(registry_path);
    if (bytes.ok()) {
      Stopwatch load_sw;
      auto payload = ckpt::UnwrapPayload(*bytes);
      auto cached =
          payload.ok()
              ? core::WsccalPipeline::Deserialize(city.features, cfg, *payload)
              : payload.status();
      if (cached.ok()) {
        model = std::move(*cached);
        Record(city.name + ".wsccl.registry_load_seconds",
               load_sw.ElapsedSeconds());
        Record(city.name + ".wsccl.registry_hit", 1.0);
      } else {
        // Never trust a bad entry; retrain and overwrite it below.
        std::fprintf(stderr, "[bench] registry entry %s rejected: %s\n",
                     registry_path.c_str(),
                     cached.status().ToString().c_str());
      }
    }
  }

  if (model == nullptr) {
    Stopwatch sw;
    auto trained = core::WsccalPipeline::Train(city.features, cfg);
    TPR_CHECK(trained.ok()) << trained.status().ToString();
    model = std::move(*trained);
    Record(city.name + ".wsccl.train_seconds", sw.ElapsedSeconds());
    if (!registry_path.empty()) {
      auto payload = model->Serialize();
      TPR_CHECK(payload.ok()) << payload.status().ToString();
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(registry_path).parent_path(), ec);
      const Status st =
          ckpt::AtomicWriteFile(registry_path, ckpt::WrapPayload(*payload));
      if (!st.ok()) {
        std::fprintf(stderr, "[bench] cannot store registry entry %s: %s\n",
                     registry_path.c_str(), st.ToString().c_str());
      }
    }
  }
  Record(city.name + ".wsccl.final_loss", model->final_loss());
  auto scores = eval::EvaluateTasks(
      *city.data, [&](const synth::TemporalPathSample& s) {
        return model->Encode(s);
      });
  TPR_CHECK(scores.ok()) << scores.status().ToString();
  Record(city.name + ".wsccl.tte_mae", scores->tte_mae);
  Record(city.name + ".wsccl.pr_mae", scores->pr_mae);
  return *scores;
}

/// Train/test indices of the labeled pool, matching the downstream probes'
/// split (supervised baselines must train on the probe's training split).
inline std::vector<int> LabeledTrainIndices(const synth::CityDataset& data) {
  std::vector<int> train, test;
  eval::SplitGroups(data.labeled, 0.8, 99, &train, &test);
  return train;
}

inline std::vector<int> LabeledTestIndices(const synth::CityDataset& data) {
  std::vector<int> train, test;
  eval::SplitGroups(data.labeled, 0.8, 99, &train, &test);
  return test;
}

/// Formats a TaskScores row for the travel-time table.
inline std::vector<std::string> TteRow(const std::string& method,
                                       const eval::TaskScores& s) {
  return {method, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
          TablePrinter::Num(s.tte_mape)};
}

/// Formats a TaskScores row for the path-ranking table.
inline std::vector<std::string> RankRow(const std::string& method,
                                        const eval::TaskScores& s) {
  return {method, TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
          TablePrinter::Num(s.pr_rho)};
}

}  // namespace tpr::bench

#endif  // TPR_BENCH_HARNESS_H_
