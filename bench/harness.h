#ifndef TPR_BENCH_HARNESS_H_
#define TPR_BENCH_HARNESS_H_

// Shared infrastructure for the per-table experiment harnesses. Each
// bench binary regenerates one table or figure of the paper on the three
// synthetic city datasets.
//
// Environment knobs:
//   TPR_BENCH_SCALE  — scales dataset sizes (default 1.0; 0.5 halves).
//   TPR_BENCH_SEED   — base seed offset for a different repetition.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/features.h"
#include "core/wsccl.h"
#include "eval/downstream.h"
#include "synth/presets.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpr::bench {

inline double BenchScale() {
  const char* s = std::getenv("TPR_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline uint64_t BenchSeedOffset() {
  const char* s = std::getenv("TPR_BENCH_SEED");
  return s != nullptr ? static_cast<uint64_t>(std::atoll(s)) : 0;
}

/// One fully prepared city: dataset + node2vec feature space.
struct PreparedCity {
  std::string name;
  std::shared_ptr<synth::CityDataset> data;
  std::shared_ptr<const core::FeatureSpace> features;
};

/// Standard feature configuration used by every experiment.
inline core::FeatureConfig DefaultFeatureConfig() {
  core::FeatureConfig fc;
  fc.temporal_graph.slots_per_day = 96;  // 15-minute slots
  fc.node2vec.seed = 42 + BenchSeedOffset();
  return fc;
}

/// Builds dataset + features for one preset, aborting on failure (benches
/// have no meaningful recovery path).
inline PreparedCity PrepareCity(synth::CityPreset preset) {
  synth::ScaleDataset(preset, BenchScale());
  preset.data.seed += BenchSeedOffset();
  auto dataset = synth::BuildPresetDataset(preset);
  TPR_CHECK(dataset.ok()) << dataset.status().ToString();
  PreparedCity city;
  city.name = preset.name;
  city.data = std::make_shared<synth::CityDataset>(std::move(*dataset));
  auto features = core::BuildFeatureSpace(city.data, DefaultFeatureConfig());
  TPR_CHECK(features.ok()) << features.status().ToString();
  city.features =
      std::make_shared<const core::FeatureSpace>(std::move(*features));
  return city;
}

/// All three cities in the paper's order.
inline std::vector<PreparedCity> PrepareAllCities() {
  std::vector<PreparedCity> cities;
  for (auto& preset : synth::AllPresets()) {
    std::fprintf(stderr, "[bench] preparing city %s...\n",
                 preset.name.c_str());
    cities.push_back(PrepareCity(preset));
  }
  return cities;
}

/// Default WSCCL configuration used across experiments (CPU scale).
inline core::WsccalConfig DefaultWsccalConfig() {
  core::WsccalConfig cfg;
  cfg.wsc.seed = 7 + BenchSeedOffset();
  cfg.wsc.encoder.seed = 31 + BenchSeedOffset();
  cfg.curriculum.num_meta_sets = 4;
  cfg.curriculum.expert_epochs = 1;
  cfg.stage_epochs = 1;
  cfg.final_epochs = 2;
  return cfg;
}

/// Trains WSCCL (or a variant) and evaluates all downstream tasks.
inline eval::TaskScores TrainAndScoreWsccl(const PreparedCity& city,
                                           const core::WsccalConfig& config) {
  auto model = core::WsccalPipeline::Train(city.features, config);
  TPR_CHECK(model.ok()) << model.status().ToString();
  auto scores = eval::EvaluateTasks(
      *city.data, [&](const synth::TemporalPathSample& s) {
        return (*model)->Encode(s);
      });
  TPR_CHECK(scores.ok()) << scores.status().ToString();
  return *scores;
}

/// Train/test indices of the labeled pool, matching the downstream probes'
/// split (supervised baselines must train on the probe's training split).
inline std::vector<int> LabeledTrainIndices(const synth::CityDataset& data) {
  std::vector<int> train, test;
  eval::SplitGroups(data.labeled, 0.8, 99, &train, &test);
  return train;
}

inline std::vector<int> LabeledTestIndices(const synth::CityDataset& data) {
  std::vector<int> train, test;
  eval::SplitGroups(data.labeled, 0.8, 99, &train, &test);
  return test;
}

/// Formats a TaskScores row for the travel-time table.
inline std::vector<std::string> TteRow(const std::string& method,
                                       const eval::TaskScores& s) {
  return {method, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
          TablePrinter::Num(s.tte_mape)};
}

/// Formats a TaskScores row for the path-ranking table.
inline std::vector<std::string> RankRow(const std::string& method,
                                        const eval::TaskScores& s) {
  return {method, TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
          TablePrinter::Num(s.pr_rho)};
}

}  // namespace tpr::bench

#endif  // TPR_BENCH_HARNESS_H_
