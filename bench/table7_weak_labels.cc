// Reproduces Table VII: peak/off-peak (POP) vs traffic congestion index
// (TCI) weak labels on the Harbin and Chengdu analogues (the paper has no
// TCI feed for Aalborg).

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table VII: Effect of Different Weak Labels\n");
  for (const auto& preset :
       {synth::HarbinPreset(), synth::ChengduPreset()}) {
    PreparedCity city = PrepareCity(preset);

    auto tci = DefaultWsccalConfig();
    tci.wsc.weak_labels = synth::WeakLabelScheme::kCongestionIndex;
    std::fprintf(stderr, "[bench] %s TCI...\n", city.name.c_str());
    const auto s_tci = TrainAndScoreWsccl(city, tci);
    std::fprintf(stderr, "[bench] %s POP...\n", city.name.c_str());
    const auto s_pop = TrainAndScoreWsccl(city, DefaultWsccalConfig());

    TablePrinter t({"Method", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                    "rho"});
    auto row = [](const std::string& name, const eval::TaskScores& s) {
      return std::vector<std::string>{
          name, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
          TablePrinter::Num(s.tte_mape), TablePrinter::Num(s.pr_mae),
          TablePrinter::Num(s.pr_tau), TablePrinter::Num(s.pr_rho)};
    };
    t.AddRow(row("WSCCL-TCI", s_tci));
    t.AddRow(row("WSCCL-POP", s_pop));
    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
  }
  return 0;
}
