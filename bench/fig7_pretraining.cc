// Reproduces Fig. 7: using WSCCL as a pre-training method for PathRank.
// For each city and each labeled-budget fraction, PathRank is trained
// from scratch and from a WSCCL-pretrained encoder; the series of direct
// prediction MAEs (travel time and ranking score) are printed.

#include "baselines/supervised.h"
#include "eval/metrics.h"
#include "harness.h"

namespace tpr::bench {
namespace {

struct SeriesPoint {
  int labels;
  double mae_scratch;
  double mae_pretrained;
};

std::vector<SeriesPoint> RunTask(const PreparedCity& city,
                                 baselines::SupervisedTask task,
                                 const core::TemporalPathEncoder& pretrained) {
  const auto full_train = LabeledTrainIndices(*city.data);
  const auto test_idx = LabeledTestIndices(*city.data);

  std::vector<SeriesPoint> series;
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const size_t budget =
        std::max<size_t>(8, static_cast<size_t>(full_train.size() * fraction));
    std::vector<int> train(full_train.begin(),
                           full_train.begin() +
                               std::min(budget, full_train.size()));

    auto evaluate = [&](baselines::PathRankModel& model) {
      auto st = model.Train();
      TPR_CHECK(st.ok()) << st.ToString();
      std::vector<double> truth, pred;
      for (int i : test_idx) {
        const auto& s = city.data->labeled[i];
        truth.push_back(task == baselines::SupervisedTask::kTravelTime
                            ? s.travel_time_s
                            : s.rank_score);
        pred.push_back(model.PredictPrimary(s));
      }
      return *eval::Mae(truth, pred);
    };

    baselines::SupervisedConfig cfg;
    cfg.primary = task;
    baselines::PathRankModel scratch(city.features, train, cfg);
    const double mae_scratch = evaluate(scratch);

    baselines::PathRankModel warm(city.features, train, cfg);
    auto st = warm.InitEncoderFrom(pretrained);
    TPR_CHECK(st.ok()) << st.ToString();
    const double mae_warm = evaluate(warm);

    series.push_back({static_cast<int>(train.size()), mae_scratch, mae_warm});
  }
  return series;
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Fig. 7: Effects of Pre-training (PathRank MAE vs #labels)\n");
  for (const auto& preset : synth::AllPresets()) {
    PreparedCity city = PrepareCity(preset);
    std::fprintf(stderr, "[bench] === %s: pre-training WSCCL ===\n",
                 city.name.c_str());
    auto wsccl = core::WsccalPipeline::Train(city.features,
                                             DefaultWsccalConfig());
    TPR_CHECK(wsccl.ok()) << wsccl.status().ToString();
    const auto& encoder = (*wsccl)->model().encoder();

    for (auto task : {baselines::SupervisedTask::kTravelTime,
                      baselines::SupervisedTask::kRanking}) {
      const bool tte = task == baselines::SupervisedTask::kTravelTime;
      std::fprintf(stderr, "[bench]   task %s...\n",
                   tte ? "travel time" : "ranking");
      auto series = RunTask(city, task, encoder);
      TablePrinter t({"#labels", "PathRank", "WSCCL + PathRank"});
      for (const auto& p : series) {
        t.AddRow({std::to_string(p.labels),
                  TablePrinter::Num(p.mae_scratch, tte ? 2 : 3),
                  TablePrinter::Num(p.mae_pretrained, tte ? 2 : 3)});
      }
      std::printf("\n-- %s / %s --\n%s", city.name.c_str(),
                  tte ? "Travel Time Estimation" : "Path Ranking",
                  t.ToString().c_str());
    }
  }
  return 0;
}
