// Microbenchmarks for the hot paths of the library: autograd ops, the
// temporal path encoder, node2vec walking, and GBDT fitting. Not a paper
// table; used to keep the experiment harnesses fast.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "gbdt/gradient_boosting.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "node2vec/node2vec.h"
#include "synth/city_generator.h"
#include "util/rng.h"

namespace tpr {
namespace {

void BM_MatMulForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Var a = nn::UniformParam(n, n, 0.1f, rng);
  nn::Var b = nn::UniformParam(n, n, 0.1f, rng);
  for (auto _ : state) {
    nn::NoGradGuard no_grad;
    benchmark::DoNotOptimize(nn::MatMul(a, b).value().data());
  }
}
BENCHMARK(BM_MatMulForward)->Arg(32)->Arg(64)->Arg(128);

nn::Tensor RandomTensor(int rows, int cols, Rng& rng) {
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  return nn::Tensor::FromValues(rows, cols, std::move(data));
}

// The three accumulate kernels below are the backward-pass workhorses;
// square n x n operands at sizes spanning sub-tile to multi-tile.
void BM_MatMulAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulAccumulate)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransAAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulTransAAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulTransAAccumulate)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransBAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulTransBAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulTransBAccumulate)->Arg(64)->Arg(128)->Arg(256);

// Batch-loss assembly path: concatenating many small per-item losses.
void BM_ConcatColsForward(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  Rng rng(14);
  std::vector<nn::Var> vars;
  vars.reserve(parts);
  for (int i = 0; i < parts; ++i) {
    vars.push_back(nn::Var::Leaf(RandomTensor(1, 8, rng)));
  }
  for (auto _ : state) {
    nn::NoGradGuard no_grad;
    benchmark::DoNotOptimize(nn::ConcatCols(vars).value().data());
  }
}
BENCHMARK(BM_ConcatColsForward)->Arg(16)->Arg(64)->Arg(256);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::Lstm lstm(48, 32, 2, rng);
  nn::Var x = nn::UniformParam(steps, 48, 0.1f, rng);
  for (auto _ : state) {
    nn::Var loss = nn::Sum(lstm.Forward(x));
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(10)->Arg(20)->Arg(40);

void BM_Node2VecWalks(benchmark::State& state) {
  synth::CityConfig cfg;
  cfg.grid_width = 12;
  cfg.grid_height = 12;
  auto network = synth::GenerateCity(cfg);
  const auto topo = network->BuildTopologyGraph();
  node2vec::Node2VecConfig n2v;
  n2v.walks_per_node = 2;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node2vec::GenerateWalks(topo, n2v, rng));
  }
}
BENCHMARK(BM_Node2VecWalks);

void BM_GbdtFit(benchmark::State& state) {
  const int rows = 500, cols = 16;
  Rng rng(4);
  gbdt::Matrix x(rows, cols);
  std::vector<float> y(rows);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      x.at(i, j) = static_cast<float>(rng.Gaussian());
    }
    y[i] = x.at(i, 0) * 2 + x.at(i, 1);
  }
  gbdt::BoostingConfig cfg;
  cfg.num_trees = 30;
  for (auto _ : state) {
    gbdt::GradientBoostingRegressor gbr(cfg);
    benchmark::DoNotOptimize(gbr.Fit(x, y).ok());
  }
}
BENCHMARK(BM_GbdtFit);

}  // namespace
}  // namespace tpr

// Custom main instead of benchmark_main so the CI smoke runner can pass
// the same --smoke flag it gives every other bench binary: smoke mode
// caps per-benchmark measurement time so the full suite runs in seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
