// Microbenchmarks for the hot paths of the library: autograd ops, the
// temporal path encoder, node2vec walking, and GBDT fitting. Not a paper
// table; used to keep the experiment harnesses fast.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "gbdt/gradient_boosting.h"
#include "kern/arena.h"
#include "kern/kern.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "node2vec/node2vec.h"
#include "synth/city_generator.h"
#include "util/rng.h"

namespace tpr {
namespace {

// ---------------------------------------------------------------------------
// Kernel-layer phases: scalar vs avx2 GFLOP/s on the raw GEMM entry
// points at encoder-shaped operands, fused vs unfused recurrent cells,
// and arena vs system allocation. Run with --benchmark_filter=Kern|Fused|
// Arena to isolate them.
// ---------------------------------------------------------------------------

// Shapes the WSC-TPR encoder actually runs: (path_len x d_hidden) times
// (d_hidden x 4*d_hidden) gate projections and the square attention
// products. {m, k, n}.
constexpr int kEncoderShapes[][3] = {
    {20, 64, 256},   // LSTM gate projection, default d_hidden
    {20, 128, 512},  // wide encoder variant
    {64, 64, 64},    // attention score block
};

// True when the requested kernel can run here; skips the bench otherwise
// so avx2 rows simply vanish on machines without it.
bool PinKernelOrSkip(benchmark::State& state, kern::Kernel k) {
  if (k == kern::Kernel::kAvx2 && !kern::CpuSupportsAvx2()) {
    state.SkipWithError("AVX2 not supported on this CPU");
    return false;
  }
  kern::SetKernel(k);
  return true;
}

void ReportGemmRate(benchmark::State& state, int m, int k, int n) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * k * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

template <kern::Kernel K>
void BM_KernGemmAcc(benchmark::State& state) {
  if (!PinKernelOrSkip(state, K)) return;
  const auto& s = kEncoderShapes[state.range(0)];
  const int m = s[0], k = s[1], n = s[2];
  Rng rng(21);
  std::vector<float> a(static_cast<size_t>(m) * k), b(static_cast<size_t>(k) * n),
      out(static_cast<size_t>(m) * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    kern::GemmAcc(a.data(), b.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  ReportGemmRate(state, m, k, n);
  kern::SetKernel(kern::ResolveKernelSpec(std::getenv("TPR_KERNEL")));
}
BENCHMARK_TEMPLATE(BM_KernGemmAcc, kern::Kernel::kScalar)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmAcc/scalar");
BENCHMARK_TEMPLATE(BM_KernGemmAcc, kern::Kernel::kAvx2)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmAcc/avx2");

template <kern::Kernel K>
void BM_KernGemmTransBAcc(benchmark::State& state) {
  if (!PinKernelOrSkip(state, K)) return;
  const auto& s = kEncoderShapes[state.range(0)];
  const int m = s[0], k = s[1], n = s[2];
  Rng rng(22);
  std::vector<float> a(static_cast<size_t>(m) * k), b(static_cast<size_t>(n) * k),
      out(static_cast<size_t>(m) * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    kern::GemmTransBAcc(a.data(), b.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  ReportGemmRate(state, m, k, n);
  kern::SetKernel(kern::ResolveKernelSpec(std::getenv("TPR_KERNEL")));
}
BENCHMARK_TEMPLATE(BM_KernGemmTransBAcc, kern::Kernel::kScalar)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmTransBAcc/scalar");
BENCHMARK_TEMPLATE(BM_KernGemmTransBAcc, kern::Kernel::kAvx2)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmTransBAcc/avx2");

// Fused LstmCellOp against the composition it replaced: same math, one
// graph node and no per-gate intermediates vs nine nodes.
void LstmCellBench(benchmark::State& state, bool fused) {
  const int m = 20, h = 64;
  Rng rng(23);
  nn::Var gates = nn::UniformParam(m, 4 * h, 0.1f, rng);
  nn::Var c_prev = nn::UniformParam(m, h, 0.1f, rng);
  for (auto _ : state) {
    nn::Var out;
    if (fused) {
      out = nn::SliceCols(nn::LstmCellOp(gates, c_prev), 0, h);
    } else {
      nn::Var i = nn::Sigmoid(nn::SliceCols(gates, 0, h));
      nn::Var f = nn::Sigmoid(nn::SliceCols(gates, h, h));
      nn::Var g = nn::Tanh(nn::SliceCols(gates, 2 * h, h));
      nn::Var o = nn::Sigmoid(nn::SliceCols(gates, 3 * h, h));
      nn::Var c = nn::Add(nn::Mul(f, c_prev), nn::Mul(i, g));
      out = nn::Mul(o, nn::Tanh(c));
    }
    nn::Var loss = nn::Sum(out);
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
void BM_LstmCellFused(benchmark::State& state) { LstmCellBench(state, true); }
void BM_LstmCellUnfused(benchmark::State& state) {
  LstmCellBench(state, false);
}
BENCHMARK(BM_LstmCellFused);
BENCHMARK(BM_LstmCellUnfused);

// Allocation cost at a graph-typical block size: warmed arena free-list
// hit vs a fresh system malloc/free pair.
void BM_ArenaAllocFree(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  kern::ArenaFree(kern::ArenaAlloc(bytes), bytes);  // warm the bucket
  for (auto _ : state) {
    void* p = kern::ArenaAlloc(bytes);
    benchmark::DoNotOptimize(p);
    kern::ArenaFree(p, bytes);
  }
}
BENCHMARK(BM_ArenaAllocFree)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SystemAllocFree(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    void* p = ::operator new(bytes);
    // Touch one cache line per page so lazily-mapped fresh pages pay
    // their fault here, as arena misses do.
    auto* c = static_cast<char*>(p);
    for (size_t off = 0; off < bytes; off += 4096) c[off] = 1;
    benchmark::DoNotOptimize(p);
    ::operator delete(p);
  }
}
BENCHMARK(BM_SystemAllocFree)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_MatMulForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Var a = nn::UniformParam(n, n, 0.1f, rng);
  nn::Var b = nn::UniformParam(n, n, 0.1f, rng);
  for (auto _ : state) {
    nn::NoGradGuard no_grad;
    benchmark::DoNotOptimize(nn::MatMul(a, b).value().data());
  }
}
BENCHMARK(BM_MatMulForward)->Arg(32)->Arg(64)->Arg(128);

nn::Tensor RandomTensor(int rows, int cols, Rng& rng) {
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  return nn::Tensor::FromValues(rows, cols, std::move(data));
}

// The three accumulate kernels below are the backward-pass workhorses;
// square n x n operands at sizes spanning sub-tile to multi-tile.
void BM_MatMulAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulAccumulate)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransAAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulTransAAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulTransAAccumulate)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransBAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulTransBAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulTransBAccumulate)->Arg(64)->Arg(128)->Arg(256);

// Batch-loss assembly path: concatenating many small per-item losses.
void BM_ConcatColsForward(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  Rng rng(14);
  std::vector<nn::Var> vars;
  vars.reserve(parts);
  for (int i = 0; i < parts; ++i) {
    vars.push_back(nn::Var::Leaf(RandomTensor(1, 8, rng)));
  }
  for (auto _ : state) {
    nn::NoGradGuard no_grad;
    benchmark::DoNotOptimize(nn::ConcatCols(vars).value().data());
  }
}
BENCHMARK(BM_ConcatColsForward)->Arg(16)->Arg(64)->Arg(256);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::Lstm lstm(48, 32, 2, rng);
  nn::Var x = nn::UniformParam(steps, 48, 0.1f, rng);
  for (auto _ : state) {
    nn::Var loss = nn::Sum(lstm.Forward(x));
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(10)->Arg(20)->Arg(40);

void BM_Node2VecWalks(benchmark::State& state) {
  synth::CityConfig cfg;
  cfg.grid_width = 12;
  cfg.grid_height = 12;
  auto network = synth::GenerateCity(cfg);
  const auto topo = network->BuildTopologyGraph();
  node2vec::Node2VecConfig n2v;
  n2v.walks_per_node = 2;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node2vec::GenerateWalks(topo, n2v, rng));
  }
}
BENCHMARK(BM_Node2VecWalks);

void BM_GbdtFit(benchmark::State& state) {
  const int rows = 500, cols = 16;
  Rng rng(4);
  gbdt::Matrix x(rows, cols);
  std::vector<float> y(rows);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      x.at(i, j) = static_cast<float>(rng.Gaussian());
    }
    y[i] = x.at(i, 0) * 2 + x.at(i, 1);
  }
  gbdt::BoostingConfig cfg;
  cfg.num_trees = 30;
  for (auto _ : state) {
    gbdt::GradientBoostingRegressor gbr(cfg);
    benchmark::DoNotOptimize(gbr.Fit(x, y).ok());
  }
}
BENCHMARK(BM_GbdtFit);

}  // namespace
}  // namespace tpr

// Custom main instead of benchmark_main so the CI smoke runner can pass
// the same --smoke flag it gives every other bench binary: smoke mode
// caps per-benchmark measurement time so the full suite runs in seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
