// Microbenchmarks for the hot paths of the library: autograd ops, the
// temporal path encoder, node2vec walking, and GBDT fitting. Not a paper
// table; used to keep the experiment harnesses fast.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "gbdt/gradient_boosting.h"
#include "kern/arena.h"
#include "kern/kern.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "node2vec/node2vec.h"
#include "synth/city_generator.h"
#include "util/rng.h"

namespace tpr {
namespace {

// ---------------------------------------------------------------------------
// Kernel-layer phases: scalar vs avx2 GFLOP/s on the raw GEMM entry
// points at encoder-shaped operands, fused vs unfused recurrent cells,
// and arena vs system allocation. Run with --benchmark_filter=Kern|Fused|
// Arena to isolate them.
// ---------------------------------------------------------------------------

// Shapes the WSC-TPR encoder actually runs: (path_len x d_hidden) times
// (d_hidden x 4*d_hidden) gate projections and the square attention
// products. {m, k, n}.
constexpr int kEncoderShapes[][3] = {
    {20, 64, 256},   // LSTM gate projection, default d_hidden
    {20, 128, 512},  // wide encoder variant
    {64, 64, 64},    // attention score block
};

// True when the requested kernel can run here; skips the bench otherwise
// so avx2 rows simply vanish on machines without it.
bool PinKernelOrSkip(benchmark::State& state, kern::Kernel k) {
  if (k == kern::Kernel::kAvx2 && !kern::CpuSupportsAvx2()) {
    state.SkipWithError("AVX2 not supported on this CPU");
    return false;
  }
  kern::SetKernel(k);
  return true;
}

void ReportGemmRate(benchmark::State& state, int m, int k, int n) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * k * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

template <kern::Kernel K>
void BM_KernGemmAcc(benchmark::State& state) {
  if (!PinKernelOrSkip(state, K)) return;
  const auto& s = kEncoderShapes[state.range(0)];
  const int m = s[0], k = s[1], n = s[2];
  Rng rng(21);
  std::vector<float> a(static_cast<size_t>(m) * k), b(static_cast<size_t>(k) * n),
      out(static_cast<size_t>(m) * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    kern::GemmAcc(a.data(), b.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  ReportGemmRate(state, m, k, n);
  kern::SetKernel(kern::ResolveKernelSpec(std::getenv("TPR_KERNEL")));
}
BENCHMARK_TEMPLATE(BM_KernGemmAcc, kern::Kernel::kScalar)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmAcc/scalar");
BENCHMARK_TEMPLATE(BM_KernGemmAcc, kern::Kernel::kAvx2)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmAcc/avx2");

template <kern::Kernel K>
void BM_KernGemmTransBAcc(benchmark::State& state) {
  if (!PinKernelOrSkip(state, K)) return;
  const auto& s = kEncoderShapes[state.range(0)];
  const int m = s[0], k = s[1], n = s[2];
  Rng rng(22);
  std::vector<float> a(static_cast<size_t>(m) * k), b(static_cast<size_t>(n) * k),
      out(static_cast<size_t>(m) * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    kern::GemmTransBAcc(a.data(), b.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  ReportGemmRate(state, m, k, n);
  kern::SetKernel(kern::ResolveKernelSpec(std::getenv("TPR_KERNEL")));
}
BENCHMARK_TEMPLATE(BM_KernGemmTransBAcc, kern::Kernel::kScalar)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmTransBAcc/scalar");
BENCHMARK_TEMPLATE(BM_KernGemmTransBAcc, kern::Kernel::kAvx2)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmTransBAcc/avx2");

// Int8 quantized-inference kernels (tpr::quant's hot path): the packed
// int8 GEMM at the same encoder shapes as the fp32 rows above — the
// GOP/s gap over BM_KernGemmAcc is where the quantized rung's >=2x
// encode speedup comes from — plus the activation-row quantizer.
template <kern::Kernel K>
void BM_KernGemmInt8(benchmark::State& state) {
  if (!PinKernelOrSkip(state, K)) return;
  const auto& s = kEncoderShapes[state.range(0)];
  const int m = s[0], k = s[1], n = s[2];
  Rng rng(31);
  std::vector<int8_t> a(static_cast<size_t>(m) * k);
  std::vector<int8_t> bt(static_cast<size_t>(n) * k);
  for (auto& v : a) {
    v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  for (auto& v : bt) {
    v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  std::vector<int32_t> out(static_cast<size_t>(m) * n);
  for (auto _ : state) {
    kern::GemmInt8(a.data(), bt.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  ReportGemmRate(state, m, k, n);
  kern::SetKernel(kern::ResolveKernelSpec(std::getenv("TPR_KERNEL")));
}
BENCHMARK_TEMPLATE(BM_KernGemmInt8, kern::Kernel::kScalar)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmInt8/scalar");
BENCHMARK_TEMPLATE(BM_KernGemmInt8, kern::Kernel::kAvx2)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmInt8/avx2");

// The pre-widened variant the quantized encoder actually dispatches
// (QuantizedEncoder widens each weight panel to int16 once at
// construction). Shapes are the two the rung runs hot: the lockstep
// recurrent step at batch 32 and the degenerate single-item step (m=1,
// pure B-panel streaming — the worst case for the row-tiled kernel).
constexpr int kWideShapes[][3] = {
    {32, 128, 512},  // batched recurrent step, production d_hidden
    {1, 128, 512},   // single-item recurrent step
    {20, 133, 512},  // input-side projection, one avg-length path
};

template <kern::Kernel K>
void BM_KernGemmInt8Wide(benchmark::State& state) {
  if (!PinKernelOrSkip(state, K)) return;
  const auto& s = kWideShapes[state.range(0)];
  const int m = s[0], k = s[1], n = s[2];
  Rng rng(33);
  std::vector<int8_t> a(static_cast<size_t>(m) * k);
  std::vector<int16_t> btw(static_cast<size_t>(n) * k);
  for (auto& v : a) {
    v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  for (auto& v : btw) {
    v = static_cast<int16_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  std::vector<int32_t> out(static_cast<size_t>(m) * n);
  for (auto _ : state) {
    kern::GemmInt8Wide(a.data(), btw.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  ReportGemmRate(state, m, k, n);
  kern::SetKernel(kern::ResolveKernelSpec(std::getenv("TPR_KERNEL")));
}
BENCHMARK_TEMPLATE(BM_KernGemmInt8Wide, kern::Kernel::kScalar)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmInt8Wide/scalar");
BENCHMARK_TEMPLATE(BM_KernGemmInt8Wide, kern::Kernel::kAvx2)
    ->Arg(0)->Arg(1)->Arg(2)->Name("BM_KernGemmInt8Wide/avx2");

void BM_QuantizeRow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(32);
  std::vector<float> x(static_cast<size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  std::vector<int8_t> q(static_cast<size_t>(n));
  for (auto _ : state) {
    kern::QuantizeRow(x.data(), 127.0f / 4.0f, q.data(), n);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_QuantizeRow)->Arg(64)->Arg(256)->Arg(1024);

// Fused LstmCellOp against the composition it replaced: same math, one
// graph node and no per-gate intermediates vs nine nodes.
void LstmCellBench(benchmark::State& state, bool fused) {
  const int m = 20, h = 64;
  Rng rng(23);
  nn::Var gates = nn::UniformParam(m, 4 * h, 0.1f, rng);
  nn::Var c_prev = nn::UniformParam(m, h, 0.1f, rng);
  for (auto _ : state) {
    nn::Var out;
    if (fused) {
      out = nn::SliceCols(nn::LstmCellOp(gates, c_prev), 0, h);
    } else {
      nn::Var i = nn::Sigmoid(nn::SliceCols(gates, 0, h));
      nn::Var f = nn::Sigmoid(nn::SliceCols(gates, h, h));
      nn::Var g = nn::Tanh(nn::SliceCols(gates, 2 * h, h));
      nn::Var o = nn::Sigmoid(nn::SliceCols(gates, 3 * h, h));
      nn::Var c = nn::Add(nn::Mul(f, c_prev), nn::Mul(i, g));
      out = nn::Mul(o, nn::Tanh(c));
    }
    nn::Var loss = nn::Sum(out);
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
void BM_LstmCellFused(benchmark::State& state) { LstmCellBench(state, true); }
void BM_LstmCellUnfused(benchmark::State& state) {
  LstmCellBench(state, false);
}
BENCHMARK(BM_LstmCellFused);
BENCHMARK(BM_LstmCellUnfused);

// Allocation cost at a graph-typical block size: warmed arena free-list
// hit vs a fresh system malloc/free pair.
void BM_ArenaAllocFree(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  kern::ArenaFree(kern::ArenaAlloc(bytes), bytes);  // warm the bucket
  for (auto _ : state) {
    void* p = kern::ArenaAlloc(bytes);
    benchmark::DoNotOptimize(p);
    kern::ArenaFree(p, bytes);
  }
}
BENCHMARK(BM_ArenaAllocFree)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SystemAllocFree(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    void* p = ::operator new(bytes);
    // Touch one cache line per page so lazily-mapped fresh pages pay
    // their fault here, as arena misses do.
    auto* c = static_cast<char*>(p);
    for (size_t off = 0; off < bytes; off += 4096) c[off] = 1;
    benchmark::DoNotOptimize(p);
    ::operator delete(p);
  }
}
BENCHMARK(BM_SystemAllocFree)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_MatMulForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Var a = nn::UniformParam(n, n, 0.1f, rng);
  nn::Var b = nn::UniformParam(n, n, 0.1f, rng);
  for (auto _ : state) {
    nn::NoGradGuard no_grad;
    benchmark::DoNotOptimize(nn::MatMul(a, b).value().data());
  }
}
BENCHMARK(BM_MatMulForward)->Arg(32)->Arg(64)->Arg(128);

nn::Tensor RandomTensor(int rows, int cols, Rng& rng) {
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  return nn::Tensor::FromValues(rows, cols, std::move(data));
}

// The three accumulate kernels below are the backward-pass workhorses;
// square n x n operands at sizes spanning sub-tile to multi-tile.
void BM_MatMulAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulAccumulate)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransAAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulTransAAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulTransAAccumulate)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransBAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  const nn::Tensor a = RandomTensor(n, n, rng);
  const nn::Tensor b = RandomTensor(n, n, rng);
  nn::Tensor out = RandomTensor(n, n, rng);
  for (auto _ : state) {
    nn::MatMulTransBAccumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatMulTransBAccumulate)->Arg(64)->Arg(128)->Arg(256);

// Batch-loss assembly path: concatenating many small per-item losses.
void BM_ConcatColsForward(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  Rng rng(14);
  std::vector<nn::Var> vars;
  vars.reserve(parts);
  for (int i = 0; i < parts; ++i) {
    vars.push_back(nn::Var::Leaf(RandomTensor(1, 8, rng)));
  }
  for (auto _ : state) {
    nn::NoGradGuard no_grad;
    benchmark::DoNotOptimize(nn::ConcatCols(vars).value().data());
  }
}
BENCHMARK(BM_ConcatColsForward)->Arg(16)->Arg(64)->Arg(256);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  Rng rng(2);
  nn::Lstm lstm(48, 32, 2, rng);
  nn::Var x = nn::UniformParam(steps, 48, 0.1f, rng);
  for (auto _ : state) {
    nn::Var loss = nn::Sum(lstm.Forward(x));
    loss.Backward();
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(10)->Arg(20)->Arg(40);

void BM_Node2VecWalks(benchmark::State& state) {
  synth::CityConfig cfg;
  cfg.grid_width = 12;
  cfg.grid_height = 12;
  auto network = synth::GenerateCity(cfg);
  const auto topo = network->BuildTopologyGraph();
  node2vec::Node2VecConfig n2v;
  n2v.walks_per_node = 2;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node2vec::GenerateWalks(topo, n2v, rng));
  }
}
BENCHMARK(BM_Node2VecWalks);

void BM_GbdtFit(benchmark::State& state) {
  const int rows = 500, cols = 16;
  Rng rng(4);
  gbdt::Matrix x(rows, cols);
  std::vector<float> y(rows);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      x.at(i, j) = static_cast<float>(rng.Gaussian());
    }
    y[i] = x.at(i, 0) * 2 + x.at(i, 1);
  }
  gbdt::BoostingConfig cfg;
  cfg.num_trees = 30;
  for (auto _ : state) {
    gbdt::GradientBoostingRegressor gbr(cfg);
    benchmark::DoNotOptimize(gbr.Fit(x, y).ok());
  }
}
BENCHMARK(BM_GbdtFit);

// ---------------------------------------------------------------------------
// Gated kernel-rate phase. Google-benchmark rows above are for humans;
// this self-timed section writes the one machine-gated record: the
// int8-vs-fp32 GEMM rate ratio at the quantized rung's hot shape, under
// the production-dispatched kernel. `bench_gate.py throughput` floors it
// from run_benches.sh --smoke (the quantized rung's >=2x kernel-level
// speedup claim; see DESIGN.md section 14 for why the gate lives at the
// kernel level and the end-to-end encode ratio is gated lower).
double BestSeconds(int reps, int iters, const std::function<void()>& fn) {
  fn();  // warm caches and the dispatch atomic
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count() / iters);
  }
  return best;
}

void WriteKernelPhaseJson(const char* path, bool smoke) {
  // The batched recurrent step: m = lockstep batch, k = d_hidden,
  // n = 4 * d_hidden gate channels. Both legs read B in the same
  // packed-transposed (n x k) layout.
  constexpr int m = 32, k = 128, n = 512;
  Rng rng(34);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(n) * k);
  std::vector<float> out(static_cast<size_t>(m) * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  std::vector<int8_t> a8(static_cast<size_t>(m) * k);
  std::vector<int16_t> btw(static_cast<size_t>(n) * k);
  for (auto& v : a8) {
    v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  for (auto& v : btw) {
    v = static_cast<int16_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  std::vector<int32_t> out32(static_cast<size_t>(m) * n);

  const int reps = smoke ? 5 : 9;
  const int iters = smoke ? 20 : 50;
  const double ops = 2.0 * m * k * n;
  // Best-of-reps, not mean: the floor gate wants the machine's capable
  // rate, and the minimum per-iteration time is the measurement least
  // polluted by preemption on shared runners.
  const double fp32_s = BestSeconds(reps, iters, [&] {
    kern::GemmTransBAcc(a.data(), b.data(), out.data(), m, k, n);
  });
  const double int8_s = BestSeconds(reps, iters, [&] {
    kern::GemmInt8Wide(a8.data(), btw.data(), out32.data(), m, k, n);
  });
  const double fp32_rate = fp32_s > 0 ? ops / fp32_s : 0.0;
  const double int8_rate = int8_s > 0 ? ops / int8_s : 0.0;

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_micro_ops\",\n"
               "  \"smoke\": %s,\n  \"threads\": 1,\n  \"scale\": 1,\n"
               "  \"commit\": \"\",\n  \"metrics\": {\n",
               smoke ? "true" : "false");
  std::fprintf(f, "    \"kern.avx2_available\": %d,\n",
               kern::CpuSupportsAvx2() ? 1 : 0);
  std::fprintf(f, "    \"kern.fp32_gemm_gflops\": %.6g,\n", fp32_rate / 1e9);
  std::fprintf(f, "    \"kern.int8_gemm_gops\": %.6g,\n", int8_rate / 1e9);
  std::fprintf(f, "    \"kern.int8_vs_fp32_gemm_rate\": %.6g\n",
               fp32_rate > 0 ? int8_rate / fp32_rate : 0.0);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace tpr

// Custom main instead of benchmark_main so the CI smoke runner can pass
// the same --smoke flag it gives every other bench binary: smoke mode
// caps per-benchmark measurement time so the full suite runs in seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("TPR_BENCH_JSON")) {
    tpr::WriteKernelPhaseJson(path, smoke);
  }
  return 0;
}
