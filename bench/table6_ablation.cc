// Reproduces Table VI: ablations of curriculum learning, the global WSC
// loss, and the local WSC loss.

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table VI: Effects of CL, Global Loss and Local Loss\n");
  for (const auto& preset : synth::AllPresets()) {
    PreparedCity city = PrepareCity(preset);

    auto base = DefaultWsccalConfig();

    auto wo_cl = base;
    wo_cl.curriculum.strategy = core::CurriculumStrategy::kNone;
    wo_cl.stage_epochs = 0;
    wo_cl.final_epochs = 3;  // matched training budget

    auto wo_global = base;
    wo_global.wsc.use_global = false;

    auto wo_local = base;
    wo_local.wsc.use_local = false;

    struct Variant {
      const char* name;
      core::WsccalConfig config;
    };
    const Variant variants[] = {{"w/o CL", wo_cl},
                                {"w/o Global", wo_global},
                                {"w/o Local", wo_local},
                                {"WSCCL", base}};

    TablePrinter t({"Method", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                    "rho"});
    for (const auto& variant : variants) {
      std::fprintf(stderr, "[bench] %s %s...\n", city.name.c_str(),
                   variant.name);
      const auto s = TrainAndScoreWsccl(city, variant.config);
      t.AddRow({variant.name, TablePrinter::Num(s.tte_mae),
                TablePrinter::Num(s.tte_mare), TablePrinter::Num(s.tte_mape),
                TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
                TablePrinter::Num(s.pr_rho)});
    }
    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
  }
  return 0;
}
