// Reproduces Table X: supervised cross-task transfer. Each supervised
// baseline is trained on a primary task and its frozen representation is
// probed on both tasks. Following the paper's naming, the "-PR" variant
// has travel time as the primary task (ranking is secondary) and "-TTE"
// has ranking as the primary task.

#include "baselines/supervised.h"
#include "harness.h"

namespace tpr::bench {
namespace {

template <typename Model>
eval::TaskScores RunVariant(const PreparedCity& city,
                            baselines::SupervisedTask primary) {
  baselines::SupervisedConfig cfg;
  cfg.primary = primary;
  Model model(city.features, LabeledTrainIndices(*city.data), cfg);
  auto st = model.Train();
  TPR_CHECK(st.ok()) << st.ToString();
  auto scores = eval::EvaluateTasks(
      *city.data, [&](const synth::TemporalPathSample& s) {
        return model.Encode(s);
      });
  TPR_CHECK(scores.ok()) << scores.status().ToString();
  return *scores;
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table X: Comparison with Supervised Methods\n");
  for (const auto& preset : synth::AllPresets()) {
    PreparedCity city = PrepareCity(preset);

    TablePrinter t({"Method", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                    "rho"});
    auto add = [&](const std::string& name, const eval::TaskScores& s) {
      t.AddRow({name, TablePrinter::Num(s.tte_mae),
                TablePrinter::Num(s.tte_mare), TablePrinter::Num(s.tte_mape),
                TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
                TablePrinter::Num(s.pr_rho)});
    };

    using Task = baselines::SupervisedTask;
    std::fprintf(stderr, "[bench] %s PathRank...\n", city.name.c_str());
    add("PathRank-PR",
        RunVariant<baselines::PathRankModel>(city, Task::kTravelTime));
    add("PathRank-TTE",
        RunVariant<baselines::PathRankModel>(city, Task::kRanking));
    std::fprintf(stderr, "[bench] %s HMTRL...\n", city.name.c_str());
    add("HMTRL-PR",
        RunVariant<baselines::HmtrlModel>(city, Task::kTravelTime));
    add("HMTRL-TTE", RunVariant<baselines::HmtrlModel>(city, Task::kRanking));
    std::fprintf(stderr, "[bench] %s DeepGTT...\n", city.name.c_str());
    add("DeepGTT-PR",
        RunVariant<baselines::DeepGttModel>(city, Task::kTravelTime));
    add("DeepGTT-TTE",
        RunVariant<baselines::DeepGttModel>(city, Task::kRanking));
    t.AddSeparator();
    std::fprintf(stderr, "[bench] %s WSCCL...\n", city.name.c_str());
    add("WSCCL", TrainAndScoreWsccl(city, DefaultWsccalConfig()));

    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
  }
  return 0;
}
