// Reproduces Table IV: path recommendation (Accuracy, Hit Rate) for the
// representation methods on the three city datasets. GCN/STGCN are
// excluded, as in the paper.

#include <memory>

#include "baselines/bert_path.h"
#include "baselines/dgi.h"
#include "baselines/gmi.h"
#include "baselines/infograph.h"
#include "baselines/memory_bank.h"
#include "baselines/node2vec_path.h"
#include "baselines/pim.h"
#include "baselines/supervised.h"
#include "harness.h"

namespace tpr::bench {
namespace {

std::vector<std::pair<std::string, eval::TaskScores>> RunCity(
    const PreparedCity& city) {
  std::vector<std::unique_ptr<baselines::PathRepresentationModel>> models;
  models.push_back(
      std::make_unique<baselines::Node2vecPathModel>(city.features));
  models.push_back(std::make_unique<baselines::DgiModel>(city.features));
  models.push_back(std::make_unique<baselines::GmiModel>(city.features));
  models.push_back(std::make_unique<baselines::MemoryBankModel>(city.features));
  models.push_back(std::make_unique<baselines::BertPathModel>(city.features));
  models.push_back(std::make_unique<baselines::InfoGraphModel>(city.features));
  models.push_back(std::make_unique<baselines::PimModel>(city.features));
  const auto train_idx = LabeledTrainIndices(*city.data);
  baselines::SupervisedConfig sup;
  sup.primary = baselines::SupervisedTask::kTravelTime;
  models.push_back(std::make_unique<baselines::HmtrlModel>(
      city.features, train_idx, sup));
  models.push_back(std::make_unique<baselines::PathRankModel>(
      city.features, train_idx, sup));

  std::vector<std::pair<std::string, eval::TaskScores>> results;
  for (auto& model : models) {
    std::fprintf(stderr, "[bench]   %s...\n", model->name().c_str());
    auto st = model->Train();
    TPR_CHECK(st.ok()) << model->name() << ": " << st.ToString();
    auto scores = eval::EvaluateTasks(
        *city.data, [&](const synth::TemporalPathSample& s) {
          return model->Encode(s);
        });
    TPR_CHECK(scores.ok()) << scores.status().ToString();
    results.emplace_back(model->name(), *scores);
  }
  std::fprintf(stderr, "[bench]   WSCCL...\n");
  results.emplace_back("WSCCL",
                       TrainAndScoreWsccl(city, DefaultWsccalConfig()));
  return results;
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  const auto cities = PrepareAllCities();
  std::printf("Table IV: Overall Performance on Path Recommendation\n");

  // One combined table: method rows, (Acc, HR) per city.
  std::vector<std::vector<std::pair<std::string, eval::TaskScores>>> all;
  for (const auto& city : cities) {
    std::fprintf(stderr, "[bench] === %s ===\n", city.name.c_str());
    all.push_back(RunCity(city));
  }

  // Header follows the cities actually prepared (smoke mode runs one).
  std::vector<std::string> header = {"Method"};
  for (const auto& city : cities) {
    header.push_back(city.name + " Acc");
    header.push_back(city.name + " HR");
  }
  TablePrinter t(std::move(header));
  const size_t num_methods = all[0].size();
  for (size_t m = 0; m < num_methods; ++m) {
    if (all[0][m].first == "WSCCL") t.AddSeparator();
    std::vector<std::string> row = {all[0][m].first};
    for (size_t c = 0; c < cities.size(); ++c) {
      row.push_back(TablePrinter::Num(all[c][m].second.rec_acc));
      row.push_back(TablePrinter::Num(all[c][m].second.rec_hr));
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
