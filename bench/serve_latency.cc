// Latency/robustness bench for the embedding inference service
// (tpr::serve). Four phases over the same service instance:
//
//   clean    — no fault plan; measures baseline sojourn latency
//              (admission -> result) under a closed-loop submitter.
//   faulted  — a deterministic tpr::fault plan injects encoder-forward
//              failures, ckpt-read failures, quant-encode failures,
//              scratch-alloc failures, queue-full sheds, and worker
//              latency; measures degraded latency plus the shed / retry /
//              degradation-rung counters across all four rungs.
//   outage   — encoder-forward:p=1 plus quant-encode:p=1 (rungs 0 and 1
//              both dead, and the bucket-cache compute shares the
//              encoder-forward site): every request lands on the
//              fallback rung and the circuit breaker trips, yielding
//              exact trip/open-skip counts.
//   recovery — plan cleared; the breaker drains its open window, probes,
//              and re-closes, ending with full-rung service restored.
//
// The model directory carries the int8 twin artifact (quant-1.q8), so
// every LoadModel below installs the quantized rung alongside the fp32
// encoder. A dedicated phase measures it:
//
//   quantized — encoder-forward:p=1 with a healthy twin: every cache-miss
//               request is answered by the int8 rung. The sequential
//               fp32-vs-int8 EncodeValue timing ratio is recorded as
//               serve.quantized.encode_speedup_vs_full (floor-gated by
//               `bench_gate.py throughput`), and the probe-MAE ratio of
//               the twin vs the fp32 encoder as
//               serve.quantized.probe_mae_ratio (baseline-gated).
//
// Then three phases on fresh service instances comparing the legacy
// per-request pipeline against the micro-batched one (tpr::batch) under
// a saturating closed-loop load:
//
//   single          — batch_max=0 (per-request encodes), the throughput
//                     baseline.
//   batched         — batch_max from TPR_BATCH_MAX (default 32): padded
//                     batch forwards plus duplicate-key coalescing. The
//                     derived serve.batched.speedup_vs_single and
//                     serve.batched.p99_gain ratios feed the
//                     `bench_gate.py throughput` floor gate (they are
//                     higher-is-better, so they stay OUT of the
//                     lower-is-better baseline check).
//   batched_faulted — the batched pipeline under the faulted-phase plan
//                     plus batch-flush drops; its per-request rung
//                     counters are deterministic (group-keyed verdicts)
//                     and baseline-gated like the unbatched ones.
//
// The faulted-phase outcome counters are bitwise-deterministic (single
// submitter, keyed fault verdicts, admission-order breaker fold — see
// src/serve/service.h), so ci/bench_gate.py gates them exactly; wall
// time and percentiles are gated loosely like every other bench.
//
// TPR_FAULT, when set, replaces the built-in fault plan (the CI soak job
// uses this to run the smoke bench under TSan with its own spec; the
// perf-gate job leaves it unset so gated counters match the baseline).

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/probe.h"
#include "fault/fault.h"
#include "harness.h"
#include "quant/quant.h"
#include "serve/service.h"

namespace tpr::bench {
namespace {

// Built-in faulted-phase plan: the ISSUE's headline outage (10% of
// encoder forwards, 10% of checkpoint reads) plus a trickle of admission
// sheds and injected worker latency so every resilience path runs.
// The quant-encode:p=0.5 leg splits retry-exhausted traffic between the
// int8 rung and the bucket cache, so both degraded rungs stay exercised
// and gated.
constexpr const char* kDefaultFaultSpec =
    "encoder-forward:p=0.1;ckpt-read:p=0.1;quant-encode:p=0.5,seed=7;"
    "alloc:p=0.02;queue-full:p=0.01;slow-worker:p=0.05,delay_ms=0.2";

struct PhaseStats {
  int requests = 0;
  int ok_full = 0;
  int ok_quantized = 0;
  int ok_cached = 0;
  int ok_fallback = 0;
  int shed = 0;
  int other_errors = 0;
  double seconds = 0.0;
  std::vector<double> latencies_ms;

  int ok() const { return ok_full + ok_quantized + ok_cached + ok_fallback; }
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

void Classify(const serve::ServeResult& result, PhaseStats* stats) {
  if (result.status.ok()) {
    switch (result.rung) {
      case serve::Rung::kFull: ++stats->ok_full; break;
      case serve::Rung::kQuantized: ++stats->ok_quantized; break;
      case serve::Rung::kCached: ++stats->ok_cached; break;
      case serve::Rung::kFallback: ++stats->ok_fallback; break;
    }
  } else if (result.status.code() == StatusCode::kResourceExhausted) {
    ++stats->shed;
  } else {
    ++stats->other_errors;
  }
}

// Workload mix: hot_per_10 of every 10 requests re-request one of
// hot_pool popular (path, departure) keys round-robin — the duplicate
// traffic a production path service sees on commute corridors, and
// exactly the shape the batch former's coalescing is built for. The
// rest walk the sample set with a rotating departure jitter, so their
// (path, bucket) keys practically never repeat inside a batch window.
// The default (0) sends every request down the unique stream.
struct TraceMix {
  int hot_per_10 = 0;
  int hot_pool = 0;
};

// Closed-loop submitter: keeps a small in-flight window so the workers
// stay busy while per-request sojourn latency is still well defined.
// Request ids are the loop index — replaying the phase replays the keyed
// fault verdicts. Every `reload_every` requests the submitter also
// issues a LoadModel, exercising the ckpt-read fault path (a failed
// reload must leave the old generation serving).
PhaseStats RunPhase(serve::InferenceService& service,
                    const std::vector<synth::TemporalPathSample>& samples,
                    const std::string& model_dir, int num_requests,
                    int reload_every, size_t window = 8,
                    TraceMix mix = {}) {
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Clock::time_point submitted;
    std::future<serve::ServeResult> future;
  };

  PhaseStats stats;
  stats.requests = num_requests;
  stats.latencies_ms.reserve(static_cast<size_t>(num_requests));
  std::deque<Pending> pending;

  auto drain_one = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    const serve::ServeResult result = p.future.get();
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - p.submitted)
                          .count();
    stats.latencies_ms.push_back(ms);
    Classify(result, &stats);
  };

  Stopwatch sw;
  int hot_seq = 0;
  int uniq_seq = 0;
  for (int i = 0; i < num_requests; ++i) {
    if (reload_every > 0 && i > 0 && i % reload_every == 0) {
      (void)service.LoadModel(model_dir);  // failure keeps the old model
    }
    serve::PathQuery query;
    if (mix.hot_per_10 > 0 && (i % 10) < mix.hot_per_10) {
      const auto& sample =
          samples[static_cast<size_t>(hot_seq++ % mix.hot_pool) %
                  samples.size()];
      query.path = sample.path;
      // Fixed departure: every repeat shares the hot key's time bucket.
      query.depart_time_s = sample.depart_time_s;
    } else {
      const auto& sample =
          samples[static_cast<size_t>(uniq_seq) % samples.size()];
      query.path = sample.path;
      // Walk across cache time buckets so rung 1 sees hits and misses.
      query.depart_time_s = sample.depart_time_s + (uniq_seq % 7) * 450;
      ++uniq_seq;
    }
    query.id = static_cast<uint64_t>(i + 1);
    auto submitted = service.Submit(std::move(query));
    if (!submitted.ok()) {
      serve::ServeResult shed;
      shed.status = submitted.status();
      Classify(shed, &stats);
    } else {
      pending.push_back({Clock::now(), std::move(*submitted)});
    }
    while (pending.size() >= window) drain_one();
  }
  while (!pending.empty()) drain_one();
  stats.seconds = sw.ElapsedSeconds();
  return stats;
}

void RecordPhase(const std::string& prefix, const PhaseStats& stats) {
  Record(prefix + ".ok_full", stats.ok_full);
  Record(prefix + ".ok_quantized", stats.ok_quantized);
  Record(prefix + ".ok_cached", stats.ok_cached);
  Record(prefix + ".ok_fallback", stats.ok_fallback);
  Record(prefix + ".shed", stats.shed);
  Record(prefix + ".other_errors", stats.other_errors);
  Record(prefix + ".p50_ms", Percentile(stats.latencies_ms, 0.50));
  Record(prefix + ".p99_ms", Percentile(stats.latencies_ms, 0.99));
}

std::vector<std::string> PhaseRow(const std::string& name,
                                  const PhaseStats& s) {
  return {name,
          std::to_string(s.requests),
          std::to_string(s.ok()),
          std::to_string(s.ok_full),
          std::to_string(s.ok_quantized),
          std::to_string(s.ok_cached),
          std::to_string(s.ok_fallback),
          std::to_string(s.shed),
          TablePrinter::Num(Percentile(s.latencies_ms, 0.50), 3),
          TablePrinter::Num(Percentile(s.latencies_ms, 0.95), 3),
          TablePrinter::Num(Percentile(s.latencies_ms, 0.99), 3),
          TablePrinter::Num(s.seconds > 0 ? s.requests / s.seconds : 0, 0)};
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);
  // The gated shed/retry/breaker counters must be live in full mode too,
  // not only under --smoke.
  obs::SetMetricsEnabled(true);

  const PreparedCity city = PrepareCity(synth::AalborgPreset());
  TPR_CHECK(!city.data->unlabeled.empty());

  core::EncoderConfig encoder_config;
  if (Smoke()) {
    encoder_config.d_hidden = 32;
    encoder_config.lstm_layers = 1;
  }

  serve::ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  // Backpressure, not shedding: the only sheds are injected queue-full
  // faults (keyed by ticket), which keeps the shed counter deterministic.
  config.block_when_full = true;
  config.max_retries = 2;
  config.backoff_base_ms = 0.2;
  config.backoff_max_ms = 5.0;
  config.breaker_trip_threshold = 10;
  config.breaker_open_requests = 32;
  config.cache_capacity = 512;
  config.time_bucket_s = 900;

  serve::InferenceService service(city.features, encoder_config, config);

  // Stage a model checkpoint plus its int8 twin artifact and install
  // both through the load path, all before any fault plan exists. The
  // encoder and twin stay alive for the sequential encode timing below.
  fault::ClearPlan();
  const std::string model_dir =
      std::filesystem::temp_directory_path().string() + "/tpr-serve-bench-" +
      std::to_string(::getpid());
  core::TemporalPathEncoder encoder(city.features, encoder_config);
  TPR_CHECK(serve::InferenceService::SaveModel(encoder, model_dir, 1).ok());
  std::shared_ptr<const quant::QuantizedEncoder> twin;
  {
    std::vector<core::PathTimeItem> calibration;
    const size_t calib_n =
        std::min<size_t>(32, city.data->unlabeled.size());
    calibration.reserve(calib_n);
    for (size_t i = 0; i < calib_n; ++i) {
      const auto& s = city.data->unlabeled[i];
      calibration.push_back({&s.path, s.depart_time_s});
    }
    auto qmodel = quant::QuantizeEncoder(encoder, calibration);
    TPR_CHECK(qmodel.ok()) << qmodel.status().ToString();
    qmodel->generation = 1;
    TPR_CHECK(quant::SaveQuantizedModel(model_dir, *qmodel, 1).ok());
    twin = std::make_shared<const quant::QuantizedEncoder>(
        city.features, *std::move(qmodel));
  }
  TPR_CHECK(service.LoadModel(model_dir).ok());
  TPR_CHECK(service.Start().ok());

  const int clean_requests = Smoke() ? 600 : 5000;
  const int faulted_requests = Smoke() ? 1200 : 10000;

  std::fprintf(stderr, "[bench] clean phase: %d requests...\n",
               clean_requests);
  const PhaseStats clean = RunPhase(service, city.data->unlabeled, model_dir,
                                    clean_requests, /*reload_every=*/0);
  TPR_CHECK(clean.ok() == clean.requests);

  const char* env_spec = std::getenv("TPR_FAULT");
  const std::string spec = env_spec != nullptr ? env_spec : kDefaultFaultSpec;
  std::fprintf(stderr, "[bench] faulted phase: %d requests, plan \"%s\"...\n",
               faulted_requests, spec.c_str());
  auto plan = fault::FaultPlan::Parse(spec);
  TPR_CHECK(plan.ok()) << plan.status().ToString();
  fault::InstallPlan(std::move(*plan));

  const uint64_t retries0 = obs::GetCounter("serve.retries").value();
  const uint64_t trips0 = obs::GetCounter("serve.breaker_trips").value();
  const uint64_t skips0 = obs::GetCounter("serve.breaker_open_skips").value();
  const uint64_t load_fail0 =
      obs::GetCounter("serve.model_load_failures").value();

  const PhaseStats faulted =
      RunPhase(service, city.data->unlabeled, model_dir, faulted_requests,
               /*reload_every=*/faulted_requests / 4);
  // Everything admitted must resolve; sheds are the only error budget.
  TPR_CHECK(faulted.other_errors == 0);
  TPR_CHECK(faulted.ok() + faulted.shed == faulted.requests);
  const double faulted_retries =
      static_cast<double>(obs::GetCounter("serve.retries").value() - retries0);
  const double faulted_load_failures = static_cast<double>(
      obs::GetCounter("serve.model_load_failures").value() - load_fail0);

  // Total outage of rungs 0-2 (the bucket-cache compute shares the
  // encoder-forward site): the breaker must trip (the admission-order
  // fold makes trip/skip counts exact), and every request must still
  // resolve on the fallback rung.
  const int outage_requests = 120;
  std::fprintf(stderr, "[bench] outage phase: %d requests...\n",
               outage_requests);
  auto outage_plan =
      fault::FaultPlan::Parse("encoder-forward:p=1;quant-encode:p=1");
  TPR_CHECK(outage_plan.ok());
  fault::InstallPlan(std::move(*outage_plan));
  const PhaseStats outage = RunPhase(service, city.data->unlabeled, model_dir,
                                     outage_requests, /*reload_every=*/0);
  TPR_CHECK(outage.ok() == outage.requests);
  TPR_CHECK(obs::GetCounter("serve.breaker_trips").value() > trips0);

  // Recovery: window 1 serializes admissions against completions, so the
  // open-window drain, the successful probe, and the re-close land at
  // fixed request positions.
  const int recovery_requests = 60;
  std::fprintf(stderr, "[bench] recovery phase: %d requests...\n",
               recovery_requests);
  fault::ClearPlan();
  const PhaseStats recovery =
      RunPhase(service, city.data->unlabeled, model_dir, recovery_requests,
               /*reload_every=*/0, /*window=*/1);
  TPR_CHECK(recovery.ok() == recovery.requests);
  TPR_CHECK(recovery.ok_full > 0);  // the breaker re-closed

  service.Shutdown();

  // ---- Quantized rung under a total fp32 outage ----
  // Fresh service (breaker/cache state must not leak), healthy twin:
  // every cache-miss request is answered by the int8 rung.
  const int quantized_requests = Smoke() ? 600 : 5000;
  std::fprintf(stderr, "[bench] quantized phase: %d requests...\n",
               quantized_requests);
  PhaseStats quantized;
  {
    serve::InferenceService svc(city.features, encoder_config, config);
    TPR_CHECK(svc.LoadModel(model_dir).ok());
    TPR_CHECK(svc.Start().ok());
    auto qplan = fault::FaultPlan::Parse("encoder-forward:p=1");
    TPR_CHECK(qplan.ok());
    fault::InstallPlan(std::move(*qplan));
    quantized = RunPhase(svc, city.data->unlabeled, model_dir,
                         quantized_requests, /*reload_every=*/0);
    fault::ClearPlan();
    svc.Shutdown();
  }
  TPR_CHECK(quantized.ok() == quantized.requests);
  TPR_CHECK(quantized.ok_quantized == quantized.requests)
      << "a healthy twin must answer every request of the outage";

  // ---- Sequential fp32 vs int8 encode timing + probe quality ----
  // One thread, same items, no service in the way: the raw EncodeValue
  // rate ratio the ~4x-smaller rung weights buy. Always measured at the
  // production encoder shape — the smoke phases shrink d_hidden to keep
  // the service phases fast, but at that size feature assembly dominates
  // and the GEMM speedup under test would be invisible.
  const core::EncoderConfig timing_config;  // production defaults
  core::TemporalPathEncoder timing_encoder(city.features, timing_config);
  std::shared_ptr<const quant::QuantizedEncoder> timing_twin;
  {
    std::vector<core::PathTimeItem> calibration;
    const size_t calib_n = std::min<size_t>(32, city.data->unlabeled.size());
    calibration.reserve(calib_n);
    for (size_t i = 0; i < calib_n; ++i) {
      const auto& s = city.data->unlabeled[i];
      calibration.push_back({&s.path, s.depart_time_s});
    }
    auto qmodel = quant::QuantizeEncoder(timing_encoder, calibration);
    TPR_CHECK(qmodel.ok()) << qmodel.status().ToString();
    timing_twin = std::make_shared<const quant::QuantizedEncoder>(
        city.features, *std::move(qmodel));
  }
  const int encode_items = Smoke() ? 200 : 1000;
  double fp32_seconds = 0.0, int8_seconds = 0.0;
  double fp32_batch_seconds = 0.0, int8_batch_seconds = 0.0;
  {
    std::vector<core::PathTimeItem> items;
    items.reserve(static_cast<size_t>(encode_items));
    for (int i = 0; i < encode_items; ++i) {
      const auto& s =
          city.data->unlabeled[static_cast<size_t>(i) %
                               city.data->unlabeled.size()];
      items.push_back({&s.path, s.depart_time_s + (i % 7) * 450});
    }
    Stopwatch sw_fp32;
    for (const auto& it : items) {
      auto v = timing_encoder.EncodeValue(*it.path, it.depart_time_s);
      TPR_CHECK(!v.empty());
    }
    fp32_seconds = sw_fp32.ElapsedSeconds();
    Stopwatch sw_int8;
    for (const auto& it : items) {
      auto v = timing_twin->EncodeValue(*it.path, it.depart_time_s);
      TPR_CHECK(!v.empty());
    }
    int8_seconds = sw_int8.ElapsedSeconds();

    // Batched legs: the shape the rung actually runs at — group-level
    // cache misses arrive as EncodeValueBatch calls. Same items, cut
    // into the service's typical flush size.
    constexpr size_t kTimingBatch = 32;
    Stopwatch sw_fp32_batch;
    for (size_t i = 0; i < items.size(); i += kTimingBatch) {
      const size_t n = std::min(kTimingBatch, items.size() - i);
      const std::vector<core::PathTimeItem> chunk(items.begin() + i,
                                                  items.begin() + i + n);
      auto rows = timing_encoder.EncodeValueBatch(chunk);
      TPR_CHECK(rows.size() == n);
    }
    fp32_batch_seconds = sw_fp32_batch.ElapsedSeconds();
    Stopwatch sw_int8_batch;
    for (size_t i = 0; i < items.size(); i += kTimingBatch) {
      const size_t n = std::min(kTimingBatch, items.size() - i);
      const std::vector<core::PathTimeItem> chunk(items.begin() + i,
                                                  items.begin() + i + n);
      auto rows = timing_twin->EncodeValueBatch(chunk);
      TPR_CHECK(rows.size() == n);
    }
    int8_batch_seconds = sw_int8_batch.ElapsedSeconds();
  }
  const double encode_speedup =
      int8_seconds > 0 ? fp32_seconds / int8_seconds : 0.0;
  const double batched_encode_speedup =
      int8_batch_seconds > 0 ? fp32_batch_seconds / int8_batch_seconds : 0.0;

  const core::ProbeSet probe = core::BuildProbeSet(*city.data, 48, 5);
  const auto fp32_mae = core::ProbeTravelTimeMae(timing_encoder, probe);
  TPR_CHECK(fp32_mae.ok()) << fp32_mae.status().ToString();
  const auto quant_mae = core::ProbeTravelTimeMaeWith(
      [&](const graph::Path& path, int64_t depart_time_s) {
        return timing_twin->EncodeValue(path, depart_time_s);
      },
      timing_twin->representation_dim(), probe);
  TPR_CHECK(quant_mae.ok()) << quant_mae.status().ToString();
  const double probe_mae_ratio = *fp32_mae > 0 ? *quant_mae / *fp32_mae : 0.0;

  // ---- Micro-batched pipeline: throughput comparison ----
  // Fresh service per leg (their breaker/cache state must not leak), a
  // deep queue, and a wide in-flight window so the submitter saturates
  // the workers: the comparison measures encode throughput, not the
  // submitter's round-trips.
  fault::ClearPlan();
  serve::ServiceConfig tput_config = config;
  tput_config.queue_capacity = 512;
  const int compare_requests = Smoke() ? 6400 : 20000;
  const size_t tput_window = 256;
  // Both legs replay the same duplicate-heavy trace: 9 of every 10
  // requests cycle 8 hot (path, departure) keys. The single pipeline
  // encodes every request regardless; the batched pipeline coalesces
  // the repeats — that asymmetry is the feature under test.
  const TraceMix tput_mix{/*hot_per_10=*/9, /*hot_pool=*/8};

  std::fprintf(stderr, "[bench] single-pipeline throughput: %d requests...\n",
               compare_requests);
  PhaseStats single;
  {
    serve::InferenceService svc(city.features, encoder_config, tput_config);
    TPR_CHECK(svc.LoadModel(model_dir).ok());
    TPR_CHECK(svc.Start().ok());
    single = RunPhase(svc, city.data->unlabeled, model_dir, compare_requests,
                      /*reload_every=*/0, tput_window, tput_mix);
    svc.Shutdown();
  }
  TPR_CHECK(single.ok() == single.requests);

  serve::ServiceConfig batched_config = tput_config;
  {
    const batch::BatchConfig bc = batch::FromEnv();
    batched_config.batch_max = bc.max_batch;
    batched_config.batch_ticks = bc.max_ticks;
  }
  std::fprintf(stderr,
               "[bench] batched throughput: %d requests (batch_max=%d)...\n",
               compare_requests, batched_config.batch_max);
  PhaseStats batched;
  uint64_t batches = 0;
  uint64_t coalesced = 0;
  {
    const uint64_t batches0 = obs::GetCounter("serve.batches").value();
    const uint64_t coalesced0 =
        obs::GetCounter("serve.batch_coalesced").value();
    serve::InferenceService svc(city.features, encoder_config, batched_config);
    TPR_CHECK(svc.LoadModel(model_dir).ok());
    TPR_CHECK(svc.Start().ok());
    batched = RunPhase(svc, city.data->unlabeled, model_dir, compare_requests,
                       /*reload_every=*/0, tput_window, tput_mix);
    svc.Shutdown();
    batches = obs::GetCounter("serve.batches").value() - batches0;
    coalesced = obs::GetCounter("serve.batch_coalesced").value() - coalesced0;
  }
  TPR_CHECK(batched.ok() == batched.requests);

  const double single_rps =
      single.seconds > 0 ? single.requests / single.seconds : 0.0;
  const double batched_rps =
      batched.seconds > 0 ? batched.requests / batched.seconds : 0.0;
  const double speedup = single_rps > 0 ? batched_rps / single_rps : 0.0;
  const double single_p99 = Percentile(single.latencies_ms, 0.99);
  const double batched_p99 = Percentile(batched.latencies_ms, 0.99);
  const double p99_gain = batched_p99 > 0 ? single_p99 / batched_p99 : 0.0;

  // ---- Batched pipeline under faults ----
  // The faulted-phase plan plus injected batch-flush drops. Batch
  // COMPOSITION is wall-clock dependent (idle flushes), but every
  // verdict is keyed by the request or its group hash, so the
  // per-request rung counters below are deterministic and gated.
  const std::string batched_spec =
      env_spec != nullptr ? spec : spec + ";batch-flush:p=0.05";
  std::fprintf(stderr,
               "[bench] batched faulted phase: %d requests, plan \"%s\"...\n",
               faulted_requests, batched_spec.c_str());
  PhaseStats batched_faulted;
  {
    serve::InferenceService svc(city.features, encoder_config, batched_config);
    TPR_CHECK(svc.LoadModel(model_dir).ok());
    TPR_CHECK(svc.Start().ok());
    auto bplan = fault::FaultPlan::Parse(batched_spec);
    TPR_CHECK(bplan.ok()) << bplan.status().ToString();
    fault::InstallPlan(std::move(*bplan));
    batched_faulted =
        RunPhase(svc, city.data->unlabeled, model_dir, faulted_requests,
                 /*reload_every=*/faulted_requests / 4, tput_window, tput_mix);
    fault::ClearPlan();
    svc.Shutdown();
  }
  TPR_CHECK(batched_faulted.other_errors == 0);
  TPR_CHECK(batched_faulted.ok() + batched_faulted.shed ==
            batched_faulted.requests);

  std::filesystem::remove_all(model_dir);

  RecordPhase("serve.clean", clean);
  RecordPhase("serve.faulted", faulted);
  Record("serve.faulted.retries", faulted_retries);
  Record("serve.faulted.model_load_failures", faulted_load_failures);
  Record("serve.outage.ok_fallback", outage.ok_fallback);
  Record("serve.recovery.ok_full", recovery.ok_full);
  // Gate-friendly inverse (the perf gate is upper-bound-only): requests
  // the re-closing breaker still served off the full rung.
  Record("serve.recovery.degraded", recovery.requests - recovery.ok_full);
  Record("serve.breaker_trips",
         static_cast<double>(obs::GetCounter("serve.breaker_trips").value() -
                             trips0));
  Record("serve.breaker_open_skips",
         static_cast<double>(
             obs::GetCounter("serve.breaker_open_skips").value() - skips0));
  RecordPhase("serve.quantized", quantized);
  // Higher-is-better: floor-gated by `bench_gate.py throughput`. The
  // timing is sequential and single-threaded, so the floor holds on
  // core-starved runners too.
  Record("serve.quantized.encode_speedup_vs_full", encode_speedup);
  // Same ratio at the rung's actual call shape (EncodeValueBatch of 32).
  // The fp32 batched path already amortizes per-item overhead, so this
  // floor is tighter than the sequential one — see DESIGN.md section 14
  // for the Amdahl breakdown.
  Record("serve.quantized.batched_encode_speedup_vs_full",
         batched_encode_speedup);
  // Lower-is-better: the twin's probe MAE relative to the fp32 encoder,
  // baseline-gated like every other quality metric.
  Record("serve.quantized.probe_mae_ratio", probe_mae_ratio);
  RecordPhase("serve.single", single);
  RecordPhase("serve.batched", batched);
  RecordPhase("serve.batched_faulted", batched_faulted);
  // Higher-is-better ratios for the `bench_gate.py throughput` floor
  // gate — deliberately NOT in bench_baseline.json, whose check is
  // lower-is-better.
  Record("serve.batched.speedup_vs_single", speedup);
  Record("serve.batched.p99_gain", p99_gain);
  // Informational (batch composition is wall-clock dependent): how much
  // the former actually batched and coalesced.
  Record("serve.batched.batches", static_cast<double>(batches));
  Record("serve.batched.coalesced_requests", static_cast<double>(coalesced));

  std::printf("Inference service latency under deterministic faults\n");
  std::printf("fault plan: %s\n\n", spec.c_str());
  TablePrinter table({"Phase", "Req", "OK", "Full", "Quant", "Cached",
                      "Fallback", "Shed", "p50 ms", "p95 ms", "p99 ms",
                      "req/s"});
  table.AddRow(PhaseRow("clean", clean));
  table.AddRow(PhaseRow("faulted", faulted));
  table.AddRow(PhaseRow("outage", outage));
  table.AddRow(PhaseRow("recovery", recovery));
  table.AddRow(PhaseRow("quantized", quantized));
  table.AddRow(PhaseRow("single", single));
  table.AddRow(PhaseRow("batched", batched));
  table.AddRow(PhaseRow("batched_faulted", batched_faulted));
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "batched vs single: %.2fx req/s, p99 gain %.2fx "
      "(%llu batches, %llu coalesced)\n",
      speedup, p99_gain, static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(coalesced));
  std::printf(
      "int8 vs fp32 encode: %.2fx sequential rate, probe MAE ratio %.4f "
      "(fp32 %.3f, int8 %.3f)\n",
      encode_speedup, probe_mae_ratio, *fp32_mae, *quant_mae);
  return 0;
}
