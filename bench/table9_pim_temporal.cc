// Reproduces Table IX: PIM with a post-hoc temporal embedding concatenated
// (PIM-Temporal) vs WSCCL, showing that bolting a temporal vector onto a
// non-temporal path representation is not equivalent to learning a
// coupled spatio-temporal representation.

#include "baselines/pim.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table IX: Comparison with Temporally Enhanced PIM\n");
  for (const auto& preset : synth::AllPresets()) {
    PreparedCity city = PrepareCity(preset);

    std::fprintf(stderr, "[bench] %s PIM-Temporal...\n", city.name.c_str());
    baselines::PimTemporalModel pim(city.features);
    auto st = pim.Train();
    TPR_CHECK(st.ok()) << st.ToString();
    auto pim_scores = eval::EvaluateTasks(
        *city.data, [&](const synth::TemporalPathSample& s) {
          return pim.Encode(s);
        });
    TPR_CHECK(pim_scores.ok()) << pim_scores.status().ToString();

    std::fprintf(stderr, "[bench] %s WSCCL...\n", city.name.c_str());
    const auto wsccl = TrainAndScoreWsccl(city, DefaultWsccalConfig());

    TablePrinter t({"Method", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                    "rho"});
    auto row = [](const std::string& name, const eval::TaskScores& s) {
      return std::vector<std::string>{
          name, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
          TablePrinter::Num(s.tte_mape), TablePrinter::Num(s.pr_mae),
          TablePrinter::Num(s.pr_tau), TablePrinter::Num(s.pr_rho)};
    };
    t.AddRow(row("PIM-Temporal", *pim_scores));
    t.AddRow(row("WSCCL", wsccl));
    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
  }
  return 0;
}
