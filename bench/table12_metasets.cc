// Reproduces Table XII: effect of the number of meta-sets N (== number of
// curriculum stages M) on the Aalborg and Harbin analogues. The paper
// sweeps {2, 6, 10, 14, 18}; at CPU scale with a smaller unlabeled pool
// the equivalent sweep is over smaller N.

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table XII: Effects of Number of Meta-Sets\n");
  // The smoke-scaled pool is too small to fill 8+ curriculum stages with
  // whole batches, so CI sweeps only the low end.
  const std::vector<int> sweep =
      Smoke() ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 6, 8, 10};
  for (const auto& preset : {synth::AalborgPreset(), synth::HarbinPreset()}) {
    PreparedCity city = PrepareCity(preset);
    TablePrinter t({"N", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau", "rho"});
    for (int n : sweep) {
      std::fprintf(stderr, "[bench] %s N=%d...\n", city.name.c_str(), n);
      auto cfg = DefaultWsccalConfig();
      cfg.curriculum.num_meta_sets = n;
      const auto s = TrainAndScoreWsccl(city, cfg);
      t.AddRow({std::to_string(n), TablePrinter::Num(s.tte_mae),
                TablePrinter::Num(s.tte_mare), TablePrinter::Num(s.tte_mape),
                TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
                TablePrinter::Num(s.pr_rho)});
    }
    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
    if (Smoke()) break;
  }
  return 0;
}
