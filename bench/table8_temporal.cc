// Reproduces Table VIII: effect of temporal information — WSCCL vs the
// WSCCL-NT variant whose encoder drops the temporal channel entirely.

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table VIII: Effect of Temporal Information\n");
  for (const auto& preset : synth::AllPresets()) {
    PreparedCity city = PrepareCity(preset);

    std::fprintf(stderr, "[bench] %s WSCCL...\n", city.name.c_str());
    const auto full = TrainAndScoreWsccl(city, DefaultWsccalConfig());

    auto nt = DefaultWsccalConfig();
    nt.wsc.encoder.use_temporal = false;
    std::fprintf(stderr, "[bench] %s WSCCL-NT...\n", city.name.c_str());
    const auto no_temporal = TrainAndScoreWsccl(city, nt);

    TablePrinter t({"Method", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                    "rho"});
    auto row = [](const std::string& name, const eval::TaskScores& s) {
      return std::vector<std::string>{
          name, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
          TablePrinter::Num(s.tte_mape), TablePrinter::Num(s.pr_mae),
          TablePrinter::Num(s.pr_tau), TablePrinter::Num(s.pr_rho)};
    };
    t.AddRow(row("WSCCL", full));
    t.AddRow(row("WSCCL-NT", no_temporal));
    std::printf("\n-- %s --\n%s", city.name.c_str(), t.ToString().c_str());
  }
  return 0;
}
