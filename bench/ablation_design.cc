// Extra ablation (not a paper table): encoder design choices that
// DESIGN.md calls out — the aggregate function of Eq. 8 (mean vs max vs
// last hidden state) and the sequence model (LSTM vs the Transformer the
// paper mentions as an alternative). Aalborg analogue only.

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Design ablation: aggregation and sequence model (Aalborg)\n");
  PreparedCity city = PrepareCity(synth::AalborgPreset());

  struct Variant {
    const char* name;
    core::Aggregation aggregation;
    core::SequenceModel model;
  };
  const Variant variants[] = {
      {"LSTM + mean (paper)", core::Aggregation::kMean,
       core::SequenceModel::kLstm},
      {"LSTM + max", core::Aggregation::kMax, core::SequenceModel::kLstm},
      {"LSTM + last", core::Aggregation::kLast, core::SequenceModel::kLstm},
      {"Transformer + mean", core::Aggregation::kMean,
       core::SequenceModel::kTransformer},
  };

  TablePrinter t({"Variant", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                  "rho"});
  for (const auto& v : variants) {
    std::fprintf(stderr, "[bench] %s...\n", v.name);
    auto cfg = DefaultWsccalConfig();
    cfg.wsc.encoder.aggregation = v.aggregation;
    cfg.wsc.encoder.sequence_model = v.model;
    const auto s = TrainAndScoreWsccl(city, cfg);
    t.AddRow({v.name, TablePrinter::Num(s.tte_mae),
              TablePrinter::Num(s.tte_mare), TablePrinter::Num(s.tte_mape),
              TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
              TablePrinter::Num(s.pr_rho)});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
