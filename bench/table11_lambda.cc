// Reproduces Table XI: effect of the balancing factor lambda between the
// global and local WSC losses (Eq. 12), on the Aalborg analogue.

#include "harness.h"

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  std::printf("Table XI: Effects of lambda (Aalborg)\n");
  PreparedCity city = PrepareCity(synth::AalborgPreset());

  TablePrinter t({"lambda", "TTE MAE", "MARE", "MAPE", "PR MAE", "tau",
                  "rho"});
  for (float lambda : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f}) {
    std::fprintf(stderr, "[bench] lambda=%.1f...\n", lambda);
    auto cfg = DefaultWsccalConfig();
    cfg.wsc.lambda = lambda;
    const auto s = TrainAndScoreWsccl(city, cfg);
    t.AddRow({TablePrinter::Num(lambda, 1), TablePrinter::Num(s.tte_mae),
              TablePrinter::Num(s.tte_mare), TablePrinter::Num(s.tte_mape),
              TablePrinter::Num(s.pr_mae), TablePrinter::Num(s.pr_tau),
              TablePrinter::Num(s.pr_rho)});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
