// Model-churn bench for the validated rollout layer (tpr::rollout).
// Four phases over one service + controller pair, each a closed-loop
// request stream while the controller ticks through a lifecycle edge:
//
//   steady     — bootstrap gen 1 live; baseline latency with the rollout
//                layer idle (no candidate in the directory).
//   canary     — gen 2 appears, passes validation, canaries a keyed
//                fraction of traffic, and is promoted after N clean
//                requests. A benign fault plan (canary-regression:p=0)
//                keeps the fold predictive, so the promotion lands at a
//                fixed admission index and the canary counters are exact.
//   rollback   — gen 3 appears and canaries, but canary-regression:p=1
//                injects a regression verdict at its first routed
//                request: automatic rollback + quarantine, incumbent
//                traffic undisturbed.
//   quarantine — gen 4 appears with collapsed (all-zero) parameters: the
//                offline quality gate rejects it before it ever serves,
//                while live traffic keeps flowing.
//
// The lifecycle counters (bootstraps / candidates / promoted /
// rolled_back / quarantined / publishes and the per-phase ok counts) are
// bitwise-deterministic, so ci/bench_gate.py gates them exactly; latency
// and wall time are gated loosely like every other bench.

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/probe.h"
#include "fault/fault.h"
#include "harness.h"
#include "rollout/controller.h"
#include "serve/service.h"

namespace tpr::bench {
namespace {

struct PhaseStats {
  int requests = 0;
  int ok = 0;
  int canary_served = 0;
  int errors = 0;
  double seconds = 0.0;
  std::vector<double> latencies_ms;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

// Closed-loop submitter; ids continue across phases so keyed canary
// routing never repeats a verdict.
PhaseStats RunPhase(serve::InferenceService& service,
                    const std::vector<synth::TemporalPathSample>& samples,
                    int num_requests, uint64_t* next_id, size_t window = 8) {
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Clock::time_point submitted;
    std::future<serve::ServeResult> future;
  };

  PhaseStats stats;
  stats.requests = num_requests;
  stats.latencies_ms.reserve(static_cast<size_t>(num_requests));
  std::deque<Pending> pending;

  auto drain_one = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    const serve::ServeResult result = p.future.get();
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - p.submitted)
                          .count();
    stats.latencies_ms.push_back(ms);
    if (result.status.ok()) {
      ++stats.ok;
      if (result.canary) ++stats.canary_served;
    } else {
      ++stats.errors;
    }
  };

  Stopwatch sw;
  for (int i = 0; i < num_requests; ++i) {
    const auto& sample = samples[static_cast<size_t>(i) % samples.size()];
    serve::PathQuery query;
    query.path = sample.path;
    query.depart_time_s = sample.depart_time_s + (i % 7) * 450;
    query.id = (*next_id)++;
    auto submitted = service.Submit(std::move(query));
    TPR_CHECK(submitted.ok()) << submitted.status().ToString();
    pending.push_back({Clock::now(), std::move(*submitted)});
    while (pending.size() >= window) drain_one();
  }
  while (!pending.empty()) drain_one();
  stats.seconds = sw.ElapsedSeconds();
  return stats;
}

void InstallSpec(const char* spec) {
  auto plan = fault::FaultPlan::Parse(spec);
  TPR_CHECK(plan.ok()) << plan.status().ToString();
  fault::InstallPlan(std::move(*plan));
}

// One controller tick; the controller surfaces decisions as events.
void Tick(rollout::RolloutController& controller) {
  auto report = controller.Tick();
  TPR_CHECK(report.ok()) << report.status().ToString();
  for (const std::string& event : report->events) {
    std::fprintf(stderr, "[rollout] %s\n", event.c_str());
  }
}

void RecordPhase(const std::string& prefix, const PhaseStats& stats) {
  Record(prefix + ".ok", stats.ok);
  Record(prefix + ".errors", stats.errors);
  Record(prefix + ".canary_served", stats.canary_served);
  Record(prefix + ".p50_ms", Percentile(stats.latencies_ms, 0.50));
  Record(prefix + ".p99_ms", Percentile(stats.latencies_ms, 0.99));
}

std::vector<std::string> PhaseRow(const std::string& name,
                                  const PhaseStats& s) {
  return {name,
          std::to_string(s.requests),
          std::to_string(s.ok),
          std::to_string(s.canary_served),
          std::to_string(s.errors),
          TablePrinter::Num(Percentile(s.latencies_ms, 0.50), 3),
          TablePrinter::Num(Percentile(s.latencies_ms, 0.99), 3),
          TablePrinter::Num(s.seconds > 0 ? s.requests / s.seconds : 0, 0)};
}

void ZeroParameters(core::TemporalPathEncoder& encoder) {
  for (nn::Var p : encoder.Parameters()) {
    if (!p.defined()) continue;
    nn::Tensor& t = p.mutable_value();
    float* d = t.data();
    for (size_t i = 0; i < t.size(); ++i) d[i] = 0.0f;
  }
}

void PerturbParameters(core::TemporalPathEncoder& encoder, float scale,
                       uint64_t seed) {
  Rng rng(seed);
  for (nn::Var p : encoder.Parameters()) {
    if (!p.defined()) continue;
    nn::Tensor& t = p.mutable_value();
    float* d = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
      d[i] += scale * (2.0f * static_cast<float>(rng.Uniform()) - 1.0f);
    }
  }
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);
  obs::SetMetricsEnabled(true);

  const PreparedCity city = PrepareCity(synth::AalborgPreset());
  TPR_CHECK(!city.data->unlabeled.empty());

  core::EncoderConfig encoder_config;
  if (Smoke()) {
    encoder_config.d_hidden = 32;
    encoder_config.lstm_layers = 1;
  }

  serve::ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  config.block_when_full = true;
  config.max_retries = 2;
  config.backoff_base_ms = 0.2;
  config.backoff_max_ms = 5.0;
  config.breaker_trip_threshold = 10;
  config.breaker_open_requests = 32;
  config.cache_capacity = 512;
  config.time_bucket_s = 900;
  config.canary_permille = 250;
  config.canary_promote_after = Smoke() ? 24 : 96;

  serve::InferenceService service(city.features, encoder_config, config);

  fault::ClearPlan();
  const std::string model_dir =
      std::filesystem::temp_directory_path().string() + "/tpr-rollout-bench-" +
      std::to_string(::getpid());
  std::filesystem::remove_all(model_dir);

  rollout::RolloutConfig rollout_config;
  rollout_config.model_dir = model_dir;
  rollout_config.quality_budget = 0.10;
  rollout::RolloutController controller(
      &service, city.features, encoder_config,
      core::BuildProbeSet(*city.data, 64, /*seed=*/7), rollout_config);
  TPR_CHECK(controller.Init().ok());

  // Four generations staged up front, published into the watched
  // directory one phase at a time.
  core::TemporalPathEncoder gen1(city.features, encoder_config);
  core::TemporalPathEncoder gen2(city.features, encoder_config);
  PerturbParameters(gen2, 0.02f, 2);
  core::TemporalPathEncoder gen3(city.features, encoder_config);
  PerturbParameters(gen3, 0.02f, 3);
  core::TemporalPathEncoder gen4(city.features, encoder_config);
  ZeroParameters(gen4);

  const int steady_requests = Smoke() ? 400 : 4000;
  const int churn_requests = Smoke() ? 600 : 6000;
  uint64_t next_id = 1;

  // Phase 1: steady. Gen 1 bootstraps straight to live (no incumbent to
  // canary against), then serves with the rollout layer idle.
  std::fprintf(stderr, "[bench] steady phase: %d requests...\n",
               steady_requests);
  TPR_CHECK(serve::InferenceService::SaveModel(gen1, model_dir, 1).ok());
  Tick(controller);
  TPR_CHECK(service.Start().ok());
  const PhaseStats steady =
      RunPhase(service, city.data->unlabeled, steady_requests, &next_id);
  TPR_CHECK(steady.ok == steady.requests);

  // Phase 2: canary. The p=0 plan never fires; it only switches the
  // service into the predictive fold, pinning the promotion to a fixed
  // admission index so canary_served is exact.
  std::fprintf(stderr, "[bench] canary phase: %d requests...\n",
               churn_requests);
  TPR_CHECK(serve::InferenceService::SaveModel(gen2, model_dir, 2).ok());
  InstallSpec("canary-regression:p=0");
  Tick(controller);
  TPR_CHECK(service.canary_status().installed);
  const PhaseStats canary =
      RunPhase(service, city.data->unlabeled, churn_requests, &next_id);
  Tick(controller);
  fault::ClearPlan();
  TPR_CHECK(canary.ok == canary.requests);
  TPR_CHECK(service.model_generation() == 2);

  // Phase 3: rollback. Gen 3 validates cleanly but the injected
  // canary-regression verdict fires at its first routed request.
  std::fprintf(stderr, "[bench] rollback phase: %d requests...\n",
               churn_requests);
  TPR_CHECK(serve::InferenceService::SaveModel(gen3, model_dir, 3).ok());
  InstallSpec("canary-regression:p=1");
  Tick(controller);
  TPR_CHECK(service.canary_status().installed);
  const PhaseStats rollback =
      RunPhase(service, city.data->unlabeled, churn_requests, &next_id);
  Tick(controller);
  fault::ClearPlan();
  TPR_CHECK(rollback.ok == rollback.requests);
  TPR_CHECK(service.model_generation() == 2) << "incumbent must survive";

  // Phase 4: quarantine. Gen 4's collapsed parameters fail the offline
  // quality gate; it never receives a request.
  std::fprintf(stderr, "[bench] quarantine phase: %d requests...\n",
               steady_requests);
  TPR_CHECK(serve::InferenceService::SaveModel(gen4, model_dir, 4).ok());
  Tick(controller);
  TPR_CHECK(!service.canary_status().installed);
  const PhaseStats quarantine =
      RunPhase(service, city.data->unlabeled, steady_requests, &next_id);
  Tick(controller);
  TPR_CHECK(quarantine.ok == quarantine.requests);
  TPR_CHECK(quarantine.canary_served == 0);

  service.Shutdown();
  std::filesystem::remove_all(model_dir);

  RecordPhase("rollout.steady", steady);
  RecordPhase("rollout.canary", canary);
  RecordPhase("rollout.rollback", rollback);
  RecordPhase("rollout.quarantine", quarantine);
  for (const char* counter :
       {"rollout.bootstraps", "rollout.candidates", "rollout.canaries",
        "rollout.promoted", "rollout.rolled_back", "rollout.quarantined",
        "rollout.publishes", "rollout.publish_torn"}) {
    Record(counter, static_cast<double>(obs::GetCounter(counter).value()));
  }

  std::printf("Model churn through the validated rollout layer\n\n");
  TablePrinter table({"Phase", "Req", "OK", "Canary", "Err", "p50 ms",
                      "p99 ms", "req/s"});
  table.AddRow(PhaseRow("steady", steady));
  table.AddRow(PhaseRow("canary", canary));
  table.AddRow(PhaseRow("rollback", rollback));
  table.AddRow(PhaseRow("quarantine", quarantine));
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
