// Drift-adaptation soak for `tpr::drift`: the full online loop under a
// serving workload, twice in a row over a cumulatively drifting world.
//
//   steady   — gen 1 bootstraps live and serves; the detector watches a
//              stationary golden-probe MAE and stays quiet.
//   shift 1  — an incident + seasonal-demand regime shift lands. The
//              live model's MAE on the post-shift probe jumps, the
//              Page–Hinkley detector alarms, and the adaptation
//              controller fine-tunes a candidate from the live
//              generation over the fresh trajectory window, publishing
//              it through the rollout gates (canary -> promote) while
//              incumbent traffic keeps flowing.
//   shift 2  — a rush-hour migration + second incident compose onto the
//              shifted world. Same loop, plus a kill/resume drill: the
//              adaptation controller is destroyed after its first
//              fine-tune epoch and a new one resumes from the
//              checkpointed trainer state, publishing the identical
//              candidate it would have produced uninterrupted.
//
// stdout carries only the deterministic trace (control events, probe
// MAE values, request/canary counts) so run_benches.sh can `cmp` the
// 1-thread and 4-thread runs byte for byte; latency and wall time go to
// stderr and the JSON record. With TPR_FAULT set (the CI drift-soak
// leg: drift-detect + rollout-publish), flipped detector verdicts and
// torn manifest publishes perturb the trace, so exact-count checks
// relax — but the invariants hold in every mode: zero non-injected
// request failures, every launched fine-tune reaches a terminal rollout
// state, and the loop never wedges.

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/probe.h"
#include "drift/adaptation.h"
#include "drift/detector.h"
#include "fault/fault.h"
#include "harness.h"
#include "rollout/controller.h"
#include "serve/service.h"
#include "synth/regime.h"

namespace tpr::bench {
namespace {

bool FaultMode() { return std::getenv("TPR_FAULT") != nullptr; }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

struct RequestStats {
  long ok = 0;
  long errors = 0;
  long canary_served = 0;
  std::vector<double> latencies_ms;
};

/// Closed-loop batch of requests against the base-world sample paths
/// (the network never changes; only traffic does). Ids continue across
/// batches so keyed canary routing never repeats a verdict.
void RunBatch(serve::InferenceService& service,
              const std::vector<synth::TemporalPathSample>& samples,
              int num_requests, uint64_t* next_id, RequestStats* stats) {
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Clock::time_point submitted;
    std::future<serve::ServeResult> future;
  };
  std::deque<Pending> pending;
  auto drain_one = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    const serve::ServeResult result = p.future.get();
    stats->latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                      Clock::now() - p.submitted)
                                      .count());
    if (result.status.ok()) {
      ++stats->ok;
      if (result.canary) ++stats->canary_served;
    } else {
      ++stats->errors;
    }
  };
  for (int i = 0; i < num_requests; ++i) {
    const auto& sample = samples[static_cast<size_t>(i) % samples.size()];
    serve::PathQuery query;
    query.path = sample.path;
    query.depart_time_s = sample.depart_time_s + (i % 7) * 450;
    query.id = (*next_id)++;
    auto submitted = service.Submit(std::move(query));
    TPR_CHECK(submitted.ok()) << submitted.status().ToString();
    pending.push_back({Clock::now(), std::move(*submitted)});
    while (pending.size() >= 8) drain_one();
  }
  while (!pending.empty()) drain_one();
}

/// Probe MAE of a model generation read back from the rollout-watched
/// checkpoint dir — the same offline read-out the gates use, scored on
/// whatever probe labels the caller passes (pre- or post-shift world).
double GenerationProbeMae(const std::string& model_dir, uint64_t generation,
                          const std::shared_ptr<const core::FeatureSpace>& fs,
                          const core::EncoderConfig& encoder_config,
                          const core::ProbeSet& probe) {
  auto bytes =
      ckpt::ReadFileBytes(ckpt::CheckpointDir(model_dir).PathFor(generation));
  TPR_CHECK(bytes.ok()) << bytes.status().ToString();
  auto payload = ckpt::UnwrapPayload(*bytes);
  TPR_CHECK(payload.ok()) << payload.status().ToString();
  auto decoded =
      serve::InferenceService::DecodeModelPayload(*payload, fs, encoder_config);
  TPR_CHECK(decoded.ok()) << decoded.status().ToString();
  auto mae = core::ProbeTravelTimeMae(*decoded->encoder, probe);
  TPR_CHECK(mae.ok()) << mae.status().ToString();
  return *mae;
}

void PrintEvents(const char* who, const std::vector<std::string>& events) {
  for (const std::string& e : events) {
    std::string line = e;
    // The promotion resolution embeds a routed-request tally that
    // depends on worker interleaving (requests admitted while the
    // clean-count verdict latched); truncate it so the trace stays
    // bitwise identical across thread counts and runs.
    if (line.find("promoted") != std::string::npos) {
      const size_t cut = line.find(" (");
      if (cut != std::string::npos) line.resize(cut);
    }
    std::printf("[trace] %s: %s\n", who, line.c_str());
  }
}

bool Terminal(const rollout::ModelRecord* rec) {
  return rec != nullptr && (rec->state == rollout::ModelState::kLive ||
                            rec->state == rollout::ModelState::kRetired ||
                            rec->state == rollout::ModelState::kQuarantined);
}

/// Everything one adaptation cycle needs to touch; the cycle may destroy
/// and rebuild the controller mid-fine-tune (the kill/resume drill).
struct Loop {
  serve::InferenceService* service;
  rollout::RolloutController* rollout;
  std::unique_ptr<drift::AdaptationController>* adapt;
  std::shared_ptr<const core::FeatureSpace> features;
  drift::DriftDetectorConfig detector_config;
  drift::AdaptationConfig adapt_config;
  const std::vector<synth::TemporalPathSample>* samples;
  uint64_t* next_id;
  RequestStats* stats;
};

void RebuildController(Loop& loop) {
  loop.adapt->reset();  // destroy first: one controller owns finetune_dir
  *loop.adapt = std::make_unique<drift::AdaptationController>(
      loop.features, loop.service, loop.rollout, loop.detector_config,
      loop.adapt_config);
}

/// Drives an armed (or injected) alarm through fine-tune, publish,
/// canary, and terminal resolution, interleaving request batches with
/// every control tick. Returns the number of candidate publishes this
/// cycle used. `kill_after_first_epoch` runs the resume drill.
int DriveAdaptationCycle(Loop& loop,
                         const std::shared_ptr<const synth::CityDataset>& fresh,
                         bool kill_after_first_epoch) {
  // Counters come from obs, not the controller: the kill drill replaces
  // the controller object mid-cycle, resetting its member tallies.
  const uint64_t publishes_before =
      obs::GetCounter("drift.publishes").value();
  const uint64_t epoch_counter_before =
      obs::GetCounter("drift.finetune_epochs").value();

  // Fine-tune until the candidate publishes.
  bool published = false;
  bool killed = false;
  for (int tick = 0; tick < 64 && !published; ++tick) {
    auto report = loop.adapt->get()->Tick(fresh);
    if (!report.ok()) {
      TPR_CHECK(FaultMode()) << report.status().ToString();
      std::printf("[trace] adapt: tick error tolerated under faults: %s\n",
                  report.status().ToString().c_str());
    } else {
      PrintEvents("adapt", report->events);
      published = report->published;
    }
    RunBatch(*loop.service, *loop.samples, 16, loop.next_id, loop.stats);
    if (kill_after_first_epoch && !killed && !published &&
        obs::GetCounter("drift.finetune_epochs").value() >
            epoch_counter_before) {
      std::printf(
          "[trace] drill: destroying the adaptation controller after "
          "epoch 1 and resuming from checkpointed trainer state\n");
      RebuildController(loop);
      killed = true;
    }
  }
  TPR_CHECK(published) << "fine-tune never published a candidate";
  drift::AdaptationController* adapt = loop.adapt->get();
  const uint64_t candidate = adapt->candidate_generation();

  // Rollout picks the candidate up, canaries it over live traffic, and
  // resolves it (promote on clean canary; quarantine/rollback
  // otherwise). Publish faults only tear the manifest file — the next
  // tick republishes from the mirror.
  bool resolved = false;
  for (int tick = 0; tick < 32 && !resolved; ++tick) {
    auto report = loop.rollout->Tick();
    TPR_CHECK(report.ok()) << report.status().ToString();
    PrintEvents("rollout", report->events);
    resolved = Terminal(loop.rollout->manifest().Find(candidate));
    if (!resolved) {
      RunBatch(*loop.service, *loop.samples, 64, loop.next_id, loop.stats);
    }
  }
  TPR_CHECK(resolved) << "candidate gen " << candidate
                      << " never reached a terminal rollout state";

  // Cooldown resolves against the terminal record and the loop re-arms.
  for (int tick = 0; tick < 8 && adapt->state() != drift::AdaptState::kIdle;
       ++tick) {
    auto report = adapt->Tick(fresh);
    if (report.ok()) {
      PrintEvents("adapt", report->events);
    } else {
      TPR_CHECK(FaultMode()) << report.status().ToString();
    }
  }
  TPR_CHECK(adapt->state() == drift::AdaptState::kIdle);
  return static_cast<int>(obs::GetCounter("drift.publishes").value() -
                          publishes_before);
}

/// Feeds `n` identical probe-MAE observations (quiet serving: the world
/// is stationary between shifts, so the windowed statistic stays put).
void ObserveQuiet(drift::AdaptationController& adapt, double mae, int n) {
  for (int i = 0; i < n; ++i) adapt.ObserveProbeMae(mae);
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);
  obs::SetMetricsEnabled(true);
  // Line-buffer the trace so a mid-run TPR_CHECK abort still shows how
  // far the loop got (and the 1-vs-N cmp sees identical bytes anyway).
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  const PreparedCity city = PrepareCity(synth::AalborgPreset());
  TPR_CHECK(!city.data->unlabeled.empty());

  core::EncoderConfig encoder_config;
  if (Smoke()) {
    encoder_config.d_hidden = 32;
    encoder_config.lstm_layers = 1;
  }
  core::WscConfig wsc;
  wsc.encoder = encoder_config;
  wsc.anchors_per_batch = Smoke() ? 6 : 12;

  serve::ServiceConfig service_config;
  service_config.num_workers = 4;
  service_config.queue_capacity = 64;
  service_config.block_when_full = true;
  service_config.max_retries = 2;
  service_config.backoff_base_ms = 0.2;
  service_config.backoff_max_ms = 5.0;
  service_config.cache_capacity = 512;
  service_config.time_bucket_s = 900;
  service_config.canary_permille = 250;
  service_config.canary_promote_after = Smoke() ? 16 : 64;
  serve::InferenceService service(city.features, encoder_config,
                                  service_config);

  // A malformed TPR_FAULT spec must fail loudly, not soak nothing.
  TPR_CHECK(fault::InstallPlanFromEnv().ok());
  const std::string model_dir =
      std::filesystem::temp_directory_path().string() + "/tpr-drift-bench-" +
      std::to_string(::getpid());
  std::filesystem::remove_all(model_dir);

  rollout::RolloutConfig rollout_config;
  rollout_config.model_dir = model_dir;
  // The loop under test is the adaptation plumbing, not the learning
  // curve of a smoke-sized fine-tune: a generous budget keeps an
  // honestly-adapted candidate inside the quality gate.
  rollout_config.quality_budget = 0.50;
  rollout_config.quantize_twins = false;
  const core::ProbeSet base_probe = core::BuildProbeSet(*city.data, 64, 7);
  rollout::RolloutController rollout(&service, city.features, encoder_config,
                                     base_probe, rollout_config);
  TPR_CHECK(rollout.Init().ok());

  // Detector + adaptation knobs: bench defaults tuned for short quiet
  // phases, overridable through the TPR_DRIFT_* environment.
  drift::DriftDetectorConfig detector_config;
  detector_config.window = 2;
  detector_config.delta = 0.01;
  detector_config.lambda = 0.20;
  detector_config.min_windows = 2;
  detector_config.cooldown_windows = 1;
  detector_config = drift::DriftDetectorConfigFromEnv(detector_config);

  drift::AdaptationConfig adapt_config;
  adapt_config.model_dir = model_dir;
  adapt_config.finetune_dir = model_dir + "/finetune";
  adapt_config.wsc = wsc;
  adapt_config.total_epochs = Smoke() ? 2 : 3;
  adapt_config.epochs_per_tick = 1;
  adapt_config.probe_queries = Smoke() ? 48 : 64;
  adapt_config = drift::AdaptationConfigFromEnv(adapt_config);

  auto adapt = std::make_unique<drift::AdaptationController>(
      city.features, &service, &rollout, detector_config, adapt_config);

  // Gen 1 bootstraps straight to live.
  core::TemporalPathEncoder gen1(city.features, encoder_config);
  TPR_CHECK(serve::InferenceService::SaveModel(gen1, model_dir, 1).ok());
  {
    auto report = rollout.Tick();
    TPR_CHECK(report.ok()) << report.status().ToString();
    PrintEvents("rollout", report->events);
  }
  TPR_CHECK(service.model_generation() == 1);
  TPR_CHECK(service.Start().ok());
  std::printf("[trace] bootstrap: live gen 1\n");

  RequestStats stats;
  uint64_t next_id = 1;
  Loop loop{&service,        &rollout, &adapt,   city.features,
            detector_config, adapt_config, &city.data->unlabeled, &next_id,
            &stats};

  // ---- Steady phase: stationary probe MAE, detector quiet. ----
  const int steady_requests = Smoke() ? 128 : 1024;
  std::fprintf(stderr, "[bench] steady phase: %d requests...\n",
               steady_requests);
  const double steady_mae = GenerationProbeMae(
      model_dir, 1, city.features, encoder_config, base_probe);
  std::printf("[trace] steady: live probe mae %.12g\n", steady_mae);
  ObserveQuiet(*adapt, steady_mae, 8);
  RunBatch(service, city.data->unlabeled, steady_requests, &next_id, &stats);
  if (!FaultMode()) {
    TPR_CHECK(!adapt->detector().alarmed())
        << "stationary MAE must not alarm";
  } else if (adapt->detector().alarmed()) {
    // An injected false positive: the gates absorb the spurious
    // fine-tune (trained on the still-unshifted world).
    std::printf("[trace] steady: injected false alarm; absorbing\n");
    DriveAdaptationCycle(loop, city.data, /*kill_after_first_epoch=*/false);
  }

  // ---- Two regime shifts, cumulative: world 2 composes onto world 1.
  struct ShiftSpec {
    const char* name;
    synth::RegimeShift shift;
    uint64_t dataset_seed;
    bool kill_drill;
  };
  const auto& network = *city.data->network;
  synth::RegimeShiftConfig incident1;
  incident1.kind = synth::RegimeKind::kIncident;
  incident1.seed = 11;
  incident1.edge_fraction = 0.08;
  incident1.speed_scale = 0.35;
  synth::RegimeShiftConfig seasonal;
  seasonal.kind = synth::RegimeKind::kSeasonalDemand;
  seasonal.demand_scale = 1.5;
  // Shift 2 must *degrade* the probe to trip the (one-sided) detector:
  // capacity loss — a closure plus a wide incident — always slows the
  // affected paths. A pure rush-hour migration can lower probe MAE
  // (fixed-departure queries fall out of the moved peak), which is
  // exactly the kind of drift the detector deliberately ignores.
  synth::RegimeShiftConfig closure;
  closure.kind = synth::RegimeKind::kClosure;
  closure.seed = 23;
  closure.edge_fraction = 0.04;
  synth::RegimeShiftConfig incident2;
  incident2.kind = synth::RegimeKind::kIncident;
  incident2.seed = 31;
  incident2.edge_fraction = 0.10;
  incident2.speed_scale = 0.30;

  std::vector<ShiftSpec> shifts;
  shifts.push_back({"incident+seasonal",
                    synth::Compose(synth::MakeRegimeShift(network, incident1),
                                   synth::MakeRegimeShift(network, seasonal)),
                    9001, /*kill_drill=*/false});
  shifts.push_back({"closure+incident",
                    synth::Compose(synth::MakeRegimeShift(network, closure),
                                   synth::MakeRegimeShift(network, incident2)),
                    9002, /*kill_drill=*/true});

  synth::DatasetConfig fresh_config;
  fresh_config.num_unlabeled_trajectories = Smoke() ? 48 : 240;
  fresh_config.departures_per_trajectory = 2;
  fresh_config.num_labeled_groups = Smoke() ? 24 : 96;
  fresh_config.alternatives_per_group = 2;

  double recovery_ratio_min = 1e9;
  int publishes_per_shift_max = 0;
  std::shared_ptr<const synth::CityDataset> world = city.data;
  double quiet_mae = steady_mae;

  for (size_t s = 0; s < shifts.size(); ++s) {
    const ShiftSpec& spec = shifts[s];
    std::fprintf(stderr, "[bench] shift %zu (%s)...\n", s + 1, spec.name);
    fresh_config.seed = spec.dataset_seed;
    auto shifted =
        synth::GenerateShiftedDataset(*world, spec.shift, fresh_config);
    TPR_CHECK(shifted.ok()) << shifted.status().ToString();
    auto fresh = std::make_shared<const synth::CityDataset>(
        std::move(*shifted));

    // The golden probe relabeled under the post-shift ground truth: the
    // serving-time quality signal of the new world.
    const core::ProbeSet probe_now =
        drift::RelabelProbeSet(base_probe, *fresh->traffic);
    const uint64_t live_before = service.model_generation();
    const double degraded_mae = GenerationProbeMae(
        model_dir, live_before, city.features, encoder_config, probe_now);
    std::printf(
        "[trace] shift %zu (%s): live gen %llu probe mae %.12g -> %.12g\n",
        s + 1, spec.name, static_cast<unsigned long long>(live_before),
        quiet_mae, degraded_mae);

    // Serving under the shifted world: each probe evaluation interval
    // feeds one observation; the Page-Hinkley statistic climbs until
    // the alarm fires.
    int observations = 0;
    while (!adapt->detector().alarmed() && observations < 600) {
      adapt->ObserveProbeMae(degraded_mae);
      ++observations;
      if (observations % 8 == 0) {
        RunBatch(service, city.data->unlabeled, 16, &next_id, &stats);
      }
    }
    TPR_CHECK(adapt->detector().alarmed())
        << "shift " << s + 1 << " never tripped the detector";
    std::printf(
        "[trace] shift %zu: detector alarmed after %d observations "
        "(statistic %.12g)\n",
        s + 1, observations, adapt->detector().statistic());

    // The kill drill rebuilds the controller in place; `adapt` (the
    // owning unique_ptr) stays the one handle to the current one.
    const int publishes = DriveAdaptationCycle(loop, fresh, spec.kill_drill);

    const uint64_t live_after = service.model_generation();
    const double recovered_mae = GenerationProbeMae(
        model_dir, live_after, city.features, encoder_config, probe_now);
    const double ratio =
        recovered_mae > 0 ? degraded_mae / recovered_mae : 0.0;
    std::printf(
        "[trace] shift %zu resolved: live gen %llu, probe mae %.12g, "
        "recovery ratio %.12g, publishes %d\n",
        s + 1, static_cast<unsigned long long>(live_after), recovered_mae,
        ratio, publishes);
    if (!FaultMode()) {
      TPR_CHECK(live_after > live_before) << "candidate was not promoted";
      TPR_CHECK(ckpt::CheckpointDir(model_dir).PinnedSeq().value_or(0) ==
                live_after)
          << "promotion must pin the live generation";
      TPR_CHECK(!std::filesystem::exists(adapt_config.finetune_dir))
          << "fine-tune state must be cleaned up after publish";
      if (spec.kill_drill) {
        TPR_CHECK(obs::GetCounter("drift.finetune_resumes").value() >= 1)
            << "the kill drill must resume from checkpointed state";
      }
    }
    recovery_ratio_min = std::min(recovery_ratio_min, ratio);
    publishes_per_shift_max = std::max(publishes_per_shift_max, publishes);

    char metric[64];
    std::snprintf(metric, sizeof metric, "drift.shift%zu", s + 1);
    Record(std::string(metric) + ".degraded_mae", degraded_mae);
    Record(std::string(metric) + ".recovered_mae", recovered_mae);

    // Quiet serving on the new world re-baselines the detector.
    world = fresh;
    quiet_mae = recovered_mae;
    ObserveQuiet(*adapt, quiet_mae, 8);
  }

  service.Shutdown();
  std::filesystem::remove_all(model_dir);

  TPR_CHECK(stats.errors == 0)
      << stats.errors << " non-injected request failures";

  Record("drift.requests_ok", static_cast<double>(stats.ok));
  Record("drift.requests_errors", static_cast<double>(stats.errors));
  Record("drift.canary_served", static_cast<double>(stats.canary_served));
  Record("drift.publishes_per_shift_max",
         static_cast<double>(publishes_per_shift_max));
  Record("drift.recovery_ratio_min", recovery_ratio_min);
  Record("drift.p50_ms", Percentile(stats.latencies_ms, 0.50));
  Record("drift.p99_ms", Percentile(stats.latencies_ms, 0.99));
  for (const char* counter :
       {"drift.windows", "drift.detections", "drift.finetune_launches",
        "drift.finetune_epochs", "drift.finetune_resumes", "drift.publishes",
        "rollout.probe_refreshes", "rollout.promoted", "rollout.rolled_back",
        "rollout.quarantined", "rollout.publish_torn"}) {
    Record(counter, static_cast<double>(obs::GetCounter(counter).value()));
  }

  std::printf("\nOnline drift adaptation through the rollout gates\n\n");
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"requests ok", std::to_string(stats.ok)});
  table.AddRow({"requests failed", std::to_string(stats.errors)});
  // canary_served is recorded in the JSON (loosely gated): the last
  // request or two admitted while a promotion latches race the verdict,
  // so the count wobbles by ±1 and has no place in the cmp'd trace.
  table.AddRow({"detector windows",
                std::to_string(obs::GetCounter("drift.windows").value())});
  table.AddRow({"detections",
                std::to_string(obs::GetCounter("drift.detections").value())});
  table.AddRow(
      {"fine-tunes launched",
       std::to_string(obs::GetCounter("drift.finetune_launches").value())});
  table.AddRow(
      {"fine-tunes resumed",
       std::to_string(obs::GetCounter("drift.finetune_resumes").value())});
  table.AddRow({"candidates published",
                std::to_string(obs::GetCounter("drift.publishes").value())});
  table.AddRow({"promotions",
                std::to_string(obs::GetCounter("rollout.promoted").value())});
  table.AddRow({"live generation",
                std::to_string(service.model_generation())});
  table.AddRow({"max publishes per shift",
                std::to_string(publishes_per_shift_max)});
  table.AddRow({"min recovery ratio",
                TablePrinter::Num(recovery_ratio_min, 4)});
  std::printf("%s\n", table.ToString().c_str());

  std::fprintf(stderr, "[bench] p50 %.3f ms, p99 %.3f ms\n",
               Percentile(stats.latencies_ms, 0.50),
               Percentile(stats.latencies_ms, 0.99));
  return 0;
}
