// Reproduces Table III: overall accuracy on travel time estimation
// (MAE / MARE / MAPE) and path ranking (MAE / tau / rho) for the 12
// baselines and WSCCL on the three city datasets. GCN and STGCN appear in
// the travel-time table only, as in the paper.

#include <functional>
#include <memory>

#include "baselines/bert_path.h"
#include "baselines/dgi.h"
#include "baselines/gcn_tte.h"
#include "baselines/gmi.h"
#include "baselines/infograph.h"
#include "baselines/memory_bank.h"
#include "baselines/node2vec_path.h"
#include "baselines/pim.h"
#include "baselines/supervised.h"
#include "eval/metrics.h"
#include "harness.h"

namespace tpr::bench {
namespace {

using baselines::PathRepresentationModel;

// Builds every representation baseline for a city. Supervised models are
// trained on the evaluated task's training split; for Table III the
// primary task is travel time (their strongest setting there).
std::vector<std::unique_ptr<PathRepresentationModel>> BuildRepresentationModels(
    const PreparedCity& city) {
  std::vector<std::unique_ptr<PathRepresentationModel>> models;
  models.push_back(
      std::make_unique<baselines::Node2vecPathModel>(city.features));
  models.push_back(std::make_unique<baselines::DgiModel>(city.features));
  models.push_back(std::make_unique<baselines::GmiModel>(city.features));
  models.push_back(std::make_unique<baselines::MemoryBankModel>(city.features));
  models.push_back(std::make_unique<baselines::BertPathModel>(city.features));
  models.push_back(std::make_unique<baselines::InfoGraphModel>(city.features));
  models.push_back(std::make_unique<baselines::PimModel>(city.features));

  const auto train_idx = LabeledTrainIndices(*city.data);
  baselines::SupervisedConfig sup;
  sup.primary = baselines::SupervisedTask::kTravelTime;
  models.push_back(std::make_unique<baselines::DeepGttModel>(
      city.features, train_idx, sup));
  models.push_back(std::make_unique<baselines::HmtrlModel>(
      city.features, train_idx, sup));
  models.push_back(std::make_unique<baselines::PathRankModel>(
      city.features, train_idx, sup));
  return models;
}

struct CityResults {
  std::vector<std::pair<std::string, eval::TaskScores>> rep_methods;
  // GCN / STGCN: direct travel-time prediction, TTE metrics only.
  std::vector<std::pair<std::string, eval::TaskScores>> edge_methods;
};

eval::TaskScores ScoreEdgePredictor(
    const PreparedCity& city, baselines::EdgeTravelTimePredictor& model) {
  auto st = model.Train(LabeledTrainIndices(*city.data));
  TPR_CHECK(st.ok()) << st.ToString();
  const auto test_idx = LabeledTestIndices(*city.data);
  std::vector<double> truth, pred;
  for (int i : test_idx) {
    const auto& s = city.data->labeled[i];
    truth.push_back(s.travel_time_s);
    pred.push_back(model.PredictTravelTime(s.path, s.depart_time_s));
  }
  eval::TaskScores scores;
  scores.tte_mae = *eval::Mae(truth, pred);
  scores.tte_mare = *eval::Mare(truth, pred);
  scores.tte_mape = *eval::Mape(truth, pred);
  return scores;
}

CityResults RunCity(const PreparedCity& city) {
  CityResults results;
  for (auto& model : BuildRepresentationModels(city)) {
    std::fprintf(stderr, "[bench]   %s: training...\n", model->name().c_str());
    Stopwatch sw;
    auto st = model->Train();
    TPR_CHECK(st.ok()) << model->name() << ": " << st.ToString();
    auto scores = eval::EvaluateTasks(
        *city.data, [&](const synth::TemporalPathSample& s) {
          return model->Encode(s);
        });
    TPR_CHECK(scores.ok()) << scores.status().ToString();
    std::fprintf(stderr, "[bench]   %s done in %.1fs\n",
                 model->name().c_str(), sw.ElapsedSeconds());
    results.rep_methods.emplace_back(model->name(), *scores);
  }

  {
    baselines::GcnTteModel gcn(city.features);
    results.edge_methods.emplace_back(gcn.name(),
                                      ScoreEdgePredictor(city, gcn));
    baselines::StgcnTteModel stgcn(city.features);
    results.edge_methods.emplace_back(stgcn.name(),
                                      ScoreEdgePredictor(city, stgcn));
  }

  std::fprintf(stderr, "[bench]   WSCCL: training...\n");
  results.rep_methods.emplace_back(
      "WSCCL", TrainAndScoreWsccl(city, DefaultWsccalConfig()));
  return results;
}

}  // namespace
}  // namespace tpr::bench

int main(int argc, char** argv) {
  using namespace tpr;
  using namespace tpr::bench;
  Init(argc, argv);

  const auto cities = PrepareAllCities();
  std::vector<CityResults> all;
  for (const auto& city : cities) {
    std::fprintf(stderr, "[bench] === %s ===\n", city.name.c_str());
    all.push_back(RunCity(city));
  }

  std::printf("Table III (a): Travel Time Estimation\n");
  for (size_t c = 0; c < cities.size(); ++c) {
    TablePrinter t({"Method", "MAE", "MARE", "MAPE"});
    const eval::TaskScores* wsccl = nullptr;
    for (const auto& [name, s] : all[c].rep_methods) {
      if (name == "WSCCL") {
        wsccl = &s;
        continue;
      }
      t.AddRow(TteRow(name, s));
    }
    for (const auto& [name, s] : all[c].edge_methods) {
      t.AddRow(TteRow(name, s));
    }
    t.AddSeparator();
    if (wsccl != nullptr) t.AddRow(TteRow("WSCCL", *wsccl));
    std::printf("\n-- %s --\n%s", cities[c].name.c_str(),
                t.ToString().c_str());
  }

  std::printf("\nTable III (b): Path Ranking Estimation\n");
  for (size_t c = 0; c < cities.size(); ++c) {
    TablePrinter t({"Method", "MAE", "tau", "rho"});
    for (const auto& [name, s] : all[c].rep_methods) {
      if (name == "WSCCL") t.AddSeparator();
      t.AddRow(RankRow(name, s));
    }
    std::printf("\n-- %s --\n%s", cities[c].name.c_str(),
                t.ToString().c_str());
  }
  return 0;
}
