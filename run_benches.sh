#!/bin/sh
# Runs every bench binary in sequence and collects their stdout into
# bench_output.txt. Stderr (progress logs) goes to bench_progress.log.
set -u
out=/root/repo/bench_output.txt
log=/root/repo/bench_progress.log
: > "$out"
: > "$log"
for b in /root/repo/build/bench/bench_*; do
  name=$(basename "$b")
  echo "==================== $name ====================" >> "$out"
  echo "[suite] running $name" >> "$log"
  "$b" >> "$out" 2>> "$log"
  echo "" >> "$out"
done
echo "[suite] done" >> "$log"
