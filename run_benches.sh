#!/bin/sh
# Runs the bench suite.
#
#   run_benches.sh          — full mode: every bench binary in sequence,
#                             stdout collected into bench_output.txt,
#                             stderr (progress logs) into
#                             bench_progress.log, plus the data-parallel
#                             training timing comparison.
#   run_benches.sh --smoke  — CI mode: every bench binary with --smoke,
#                             one JSON record per bench under
#                             bench_smoke/, merged into
#                             bench_smoke_metrics.json by
#                             ci/bench_gate.py. No timing section.
set -u
root=$(cd "$(dirname "$0")" && pwd)
bindir=$root/build/bench

smoke=false
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=true ;;
    *) echo "usage: $0 [--smoke]" >&2; exit 2 ;;
  esac
done

# Every bench target declared in bench/CMakeLists.txt must exist as a
# built, executable binary before the suite runs. A missing binary used
# to be skipped silently by the glob below, which let a broken bench
# build pass the smoke gate with its metrics simply absent.
expected=$(sed -n 's/^tpr_add_bench(\([A-Za-z0-9_]*\).*/\1/p' \
  "$root/bench/CMakeLists.txt")
if [ -z "$expected" ]; then
  echo "[suite] no tpr_add_bench targets found in bench/CMakeLists.txt" >&2
  exit 1
fi
missing=0
for name in $expected; do
  if [ ! -x "$bindir/$name" ]; then
    echo "[suite] MISSING bench binary: $bindir/$name" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "[suite] build them first: cmake --build build -j" >&2
  exit 1
fi

if [ "$smoke" = true ]; then
  outdir=$root/bench_smoke
  rm -rf "$outdir"
  mkdir -p "$outdir"
  fail=0
  for b in "$bindir"/bench_*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "[suite] smoke $name" >&2
    if ! TPR_BENCH_JSON=$outdir/$name.json "$b" --smoke \
        > "$outdir/$name.out" 2> "$outdir/$name.log"; then
      echo "[suite] FAILED: $name (see $outdir/$name.log)" >&2
      fail=1
    fi
  done
  python3 "$root/ci/bench_gate.py" merge "$outdir" \
    -o "$root/bench_smoke_metrics.json" || fail=1
  echo "[suite] wrote $root/bench_smoke_metrics.json" >&2
  # Floor-gate the batched-serving ratios (higher-is-better, so they
  # live outside bench_baseline.json). Degraded floors cover runners
  # with fewer cores than the bench's 4 workers.
  if ! python3 "$root/ci/bench_gate.py" throughput \
      "$root/bench_smoke_metrics.json" --bench bench_serve_latency \
      --threads 4 \
      --gate serve.batched.speedup_vs_single:5.0:3.5 \
      --gate serve.batched.p99_gain:1.0:1.0; then
    echo "[suite] FAILED: batched-serving throughput gate" >&2
    fail=1
  fi
  # Quantized-rung floors. The end-to-end encode ratios are Amdahl-bound
  # (the fused cell, feature assembly, and dequant epilogues are shared
  # with or comparable to the fp32 path — DESIGN.md section 14), so the
  # >=2x claim is gated where it is true and stable: the kernel-level
  # int8-vs-fp32 GEMM rate from bench_micro_ops. The sequential and
  # batched EncodeValue ratios get honest measured floors with noise
  # margin. All three timings are single-threaded, so no degraded floor
  # is needed; the kernel-rate gate is skipped without AVX2 (scalar int8
  # trades sign-extension work for no SIMD win).
  if ! python3 "$root/ci/bench_gate.py" throughput \
      "$root/bench_smoke_metrics.json" --bench bench_serve_latency \
      --threads 1 \
      --gate serve.quantized.encode_speedup_vs_full:1.2 \
      --gate serve.quantized.batched_encode_speedup_vs_full:1.05; then
    echo "[suite] FAILED: quantized-rung encode-speedup gate" >&2
    fail=1
  fi
  if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    if ! python3 "$root/ci/bench_gate.py" throughput \
        "$root/bench_smoke_metrics.json" --bench bench_micro_ops \
        --threads 1 \
        --gate kern.int8_vs_fp32_gemm_rate:1.8; then
      echo "[suite] FAILED: int8 kernel-rate gate" >&2
      fail=1
    fi
  else
    echo "[suite] no AVX2 on this host; int8 kernel-rate gate skipped" >&2
  fi
  # Drift-adaptation recovery floor: after each injected regime shift the
  # adapted-and-promoted generation must score within 5% of the degraded
  # incumbent on the post-shift golden probe (the smoke-scale fine-tune
  # holds the line; improvement is not promised at this size), in at most
  # one publish per shift (gated exactly via bench_baseline.json).
  if ! python3 "$root/ci/bench_gate.py" throughput \
      "$root/bench_smoke_metrics.json" --bench bench_drift_soak \
      --threads 4 \
      --gate drift.recovery_ratio_min:0.95:0.95; then
    echo "[suite] FAILED: drift recovery gate" >&2
    fail=1
  fi
  # The drift loop's stdout is a timing-free control trace; the full
  # detect -> fine-tune -> canary -> promote sequence (including the
  # mid-fine-tune kill/resume drill) must be byte-identical at 1 and 4
  # threads.
  echo "[suite] drift trace determinism: threads=1 vs 4" >&2
  if TPR_THREADS=1 "$bindir/bench_drift_soak" --smoke \
        > "$outdir/bench_drift_soak.t1.out" 2>/dev/null \
      && TPR_THREADS=4 "$bindir/bench_drift_soak" --smoke \
        > "$outdir/bench_drift_soak.t4.out" 2>/dev/null \
      && cmp -s "$outdir/bench_drift_soak.t1.out" \
                "$outdir/bench_drift_soak.t4.out"; then
    echo "[suite] drift trace identical across thread counts" >&2
  else
    echo "[suite] FAILED: drift trace differs between 1 and 4 threads" >&2
    fail=1
  fi
  # Fleet shard-scaling floor: 3 single-worker shards behind the router
  # must deliver >= 2.4x the batched req/s of 1 shard. The degraded
  # floor covers runners with fewer cores than the three shard workers
  # plus the submitting thread (a 1-core host proves nothing about shard
  # parallelism, so it only checks sanity).
  if ! python3 "$root/ci/bench_gate.py" throughput \
      "$root/bench_smoke_metrics.json" --bench bench_fleet_soak \
      --threads 4 \
      --gate fleet.scaling_ratio:2.4:0.5; then
    echo "[suite] FAILED: fleet shard-scaling gate" >&2
    fail=1
  fi
  # The fleet soak's stdout is a timing-free control trace covering the
  # router, every shard's rollout/drift events, and the bitwise
  # clean-vs-bombed isolation verdicts; it must be byte-identical at 1
  # and 4 worker threads per shard.
  echo "[suite] fleet trace determinism: threads=1 vs 4" >&2
  if TPR_THREADS=1 "$bindir/bench_fleet_soak" --smoke \
        > "$outdir/bench_fleet_soak.t1.out" 2>/dev/null \
      && TPR_THREADS=4 "$bindir/bench_fleet_soak" --smoke \
        > "$outdir/bench_fleet_soak.t4.out" 2>/dev/null \
      && cmp -s "$outdir/bench_fleet_soak.t1.out" \
                "$outdir/bench_fleet_soak.t4.out"; then
    echo "[suite] fleet trace identical across thread counts" >&2
  else
    echo "[suite] FAILED: fleet trace differs between 1 and 4 threads" >&2
    fail=1
  fi
  exit $fail
fi

out=$root/bench_output.txt
log=$root/bench_progress.log
: > "$out"
: > "$log"
for b in "$bindir"/bench_*; do
  name=$(basename "$b")
  echo "==================== $name ====================" >> "$out"
  echo "[suite] running $name" >> "$log"
  "$b" >> "$out" 2>> "$log"
  echo "" >> "$out"
done

# ---- Data-parallel training timing ----
# Times one pretraining bench at a reduced scale with TPR_THREADS=1 vs N
# and records the wall-clock speedup. Override the bench, scale, or
# thread count with TPR_TIMING_BENCH / TPR_TIMING_SCALE / TPR_THREADS.
timing_bench=${TPR_TIMING_BENCH:-$bindir/bench_fig7_pretraining}
timing_scale=${TPR_TIMING_SCALE:-0.2}
timing_threads=${TPR_THREADS:-4}
timing_json=$root/BENCH_parallel_training.json
if [ -x "$timing_bench" ]; then
  echo "[suite] timing $(basename "$timing_bench") threads=1 vs $timing_threads" >> "$log"
  t0=$(date +%s.%N)
  TPR_BENCH_SCALE=$timing_scale TPR_THREADS=1 "$timing_bench" \
    > /tmp/tpr_timing_t1.txt 2>> "$log"
  t1=$(date +%s.%N)
  TPR_BENCH_SCALE=$timing_scale TPR_THREADS=$timing_threads "$timing_bench" \
    > /tmp/tpr_timing_tn.txt 2>> "$log"
  t2=$(date +%s.%N)
  # Training is designed to be bitwise identical for any thread count;
  # record whether the two runs printed identical metric tables.
  if cmp -s /tmp/tpr_timing_t1.txt /tmp/tpr_timing_tn.txt; then
    identical=true
  else
    identical=false
  fi
  awk -v b="$(basename "$timing_bench")" -v s="$timing_scale" \
      -v n="$timing_threads" -v t0="$t0" -v t1="$t1" -v t2="$t2" \
      -v ident="$identical" 'BEGIN {
    s1 = t1 - t0; sn = t2 - t1;
    printf "{\n"
    printf "  \"bench\": \"%s\",\n", b
    printf "  \"scale\": %s,\n", s
    printf "  \"threads\": %d,\n", n
    printf "  \"seconds_threads1\": %.3f,\n", s1
    printf "  \"seconds_threadsN\": %.3f,\n", sn
    printf "  \"speedup\": %.3f,\n", (sn > 0 ? s1 / sn : 0)
    printf "  \"identical_metrics\": %s\n", ident
    printf "}\n"
  }' > "$timing_json"
  echo "[suite] wrote $timing_json" >> "$log"
  # Gate the record right away: identical metrics across thread counts
  # and a core-count-aware minimum speedup.
  if ! python3 "$root/ci/bench_gate.py" speedup "$timing_json" >> "$log" 2>&1; then
    echo "[suite] FAILED: parallel-training speedup gate (see $log)" >&2
    exit 1
  fi
else
  echo "[suite] timing bench $timing_bench missing; skipped" >> "$log"
fi
echo "[suite] done" >> "$log"
